package obs

import (
	"strings"
	"testing"
)

func TestValidateJSONLReportsLineAndSnippet(t *testing.T) {
	longDetail := strings.Repeat("x", 200)
	in := `{"type":"conn","event":"read_timeout"}
{"type":"conn","event":"nonsense","detail":"` + longDetail + `"}
`
	_, err := ValidateJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("want error for unknown conn event")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") {
		t.Errorf("error %q does not name line 2", msg)
	}
	if !strings.Contains(msg, `"event":"nonsense"`) {
		t.Errorf("error %q does not include a snippet of the line", msg)
	}
	if !strings.Contains(msg, "...") || len(msg) > 250 {
		t.Errorf("snippet not truncated: %q (len %d)", msg, len(msg))
	}
}

func TestValidateJSONLTornFinalLine(t *testing.T) {
	in := `{"type":"conn","event":"read_timeout"}
{"type":"conn","eve`

	if _, err := ValidateJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("default mode must reject a torn final line")
	}
	counts, err := ValidateJSONLOptions(strings.NewReader(in), ValidateOptions{AllowTornFinal: true})
	if err != nil {
		t.Fatalf("AllowTornFinal rejected a torn final line: %v", err)
	}
	if counts[TypeConn] != 1 {
		t.Errorf("counts = %v, want 1 complete conn record", counts)
	}

	// The leniency is for the final line only: a torn line mid-file (i.e.
	// followed by more records) still fails because it isn't valid JSON.
	mid := `{"type":"conn","eve
{"type":"conn","event":"read_timeout"}
`
	if _, err := ValidateJSONLOptions(strings.NewReader(mid), ValidateOptions{AllowTornFinal: true}); err == nil {
		t.Fatal("torn line mid-file must still be rejected")
	}

	// A complete, parseable final line without a newline is validated
	// normally, not skipped.
	full := `{"type":"conn","event":"bogus_event"}`
	if _, err := ValidateJSONLOptions(strings.NewReader(full), ValidateOptions{AllowTornFinal: true}); err == nil {
		t.Fatal("complete-but-invalid final line must be validated, not skipped as torn")
	}
}

func TestValidateNetRecords(t *testing.T) {
	good := []string{
		`{"type":"net","event":"drop","reason":"bad_mic","time_sec":1}`,
		`{"type":"net","event":"drop","reason":"quota_exceeded","origin":{"gateway":"g0","channel":3,"sf":8}}`,
	}
	for _, line := range good {
		if err := ValidateRecord([]byte(line)); err != nil {
			t.Errorf("valid net record rejected: %v\n  %s", err, line)
		}
	}
	bad := []string{
		`{"type":"net","event":"drop"}`,              // no reason
		`{"type":"net","event":"boop","reason":"x"}`, // unknown event
	}
	for _, line := range bad {
		if err := ValidateRecord([]byte(line)); err == nil {
			t.Errorf("invalid net record accepted: %s", line)
		}
	}
}

// TestValidateShardConnEvents covers the PR 6 additions to the conn
// taxonomy end-to-end: emitted by the tracer, accepted by the validator.
func TestValidateShardConnEvents(t *testing.T) {
	sp := &recordingSpill{}
	tr := New(Options{Spill: sp}).WithOrigin(Origin{Gateway: "gw", Channel: 5, SF: 10})
	for _, ev := range ConnEvents {
		tr.OnConn(ev, "remote", "")
	}
	if len(sp.lines) != len(ConnEvents) {
		t.Fatalf("spilled %d records, want %d", len(sp.lines), len(ConnEvents))
	}
	for i, line := range sp.lines {
		if err := ValidateRecord([]byte(line)); err != nil {
			t.Errorf("conn event %q failed validation: %v", ConnEvents[i], err)
		}
	}
}

// TestFailureReasonValidTaxonomy pins Valid over the full taxonomy plus the
// strings that must NOT be failure reasons — notably the PR 6 shard and
// netserver event names, which live in separate taxonomies.
func TestFailureReasonValidTaxonomy(t *testing.T) {
	for _, r := range FailureReasons {
		if !r.Valid() {
			t.Errorf("taxonomy reason %q reported invalid", r)
		}
	}
	for _, s := range []string{
		"", "ok", "shard_overload", "overload_shed", "stream_overflow",
		"bad_mic", "replayed_fcnt", "quota_exceeded", "unknown_devaddr",
		"BEC_BUDGET_EXHAUSTED",
	} {
		if FailureReason(s).Valid() {
			t.Errorf("non-taxonomy string %q reported valid", s)
		}
	}
}

// TestSummarizeFailedShardedPacket covers Summarize over a pass-2 failure
// carrying the PR 6 origin field and a failure reason, the path gateway
// shards exercise when attaching per-report summaries.
func TestSummarizeFailedShardedPacket(t *testing.T) {
	pt := &PacketTrace{
		Pass:          2,
		SyncScore:     0.4,
		FailureReason: FailBECBudget,
		Origin:        &Origin{Gateway: "gw-1", Channel: 3, SF: 8},
		Symbols: []SymbolDecision{
			{Idx: 0, Bin: 10, Margin: 0.01},
			{Idx: 1, Bin: -1, Margin: -1},
			{Idx: 2, Bin: 7, Margin: 0.5},
		},
	}
	s := Summarize(pt)
	if s.Pass != 2 || s.FailureReason != FailBECBudget {
		t.Errorf("summary = %+v, want pass 2 / %s", s, FailBECBudget)
	}
	if s.AmbiguousSymbols != 1 {
		t.Errorf("ambiguous symbols = %d, want 1 (margin 0.01 < %v)", s.AmbiguousSymbols, AmbiguityMargin)
	}
	if s.MinMargin != 0.01 {
		t.Errorf("min margin = %v, want 0.01 (unassigned symbol excluded)", s.MinMargin)
	}
	if Summarize(nil) != (Summary{}) {
		t.Error("Summarize(nil) must be zero")
	}
}
