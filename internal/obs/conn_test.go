package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestOnConnExportsAndCounts(t *testing.T) {
	var sink bytes.Buffer
	tr := New(Options{Sink: &sink})
	tr.OnConn(ConnReadTimeout, "10.0.0.1:5", "i/o timeout")
	tr.OnConn(ConnReadTimeout, "10.0.0.2:6", "i/o timeout")
	tr.OnConn(ConnSampleLimit, "10.0.0.3:7", "fed 2000000 samples")

	counts := tr.ConnCounts()
	if counts[ConnReadTimeout] != 2 || counts[ConnSampleLimit] != 1 {
		t.Errorf("conn counts = %v", counts)
	}

	// Every exported line must clear the schema validator.
	types, err := ValidateJSONL(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatalf("exported conn records fail validation: %v", err)
	}
	if types[TypeConn] != 3 {
		t.Errorf("validated %d conn records, want 3", types[TypeConn])
	}
}

func TestValidateConnRecord(t *testing.T) {
	good := `{"type":"conn","event":"overload_shed","remote":"1.2.3.4:5"}`
	if err := ValidateRecord([]byte(good)); err != nil {
		t.Errorf("valid conn record rejected: %v", err)
	}
	bad := `{"type":"conn","event":"made_up"}`
	if err := ValidateRecord([]byte(bad)); err == nil {
		t.Error("unknown conn event accepted")
	}
	// The new stream event must validate too.
	san := `{"type":"stream","event":"sanitized","abs_start":12}`
	if err := ValidateRecord([]byte(san)); err != nil {
		t.Errorf("sanitized stream event rejected: %v", err)
	}
}

func TestOnConnNilTracer(t *testing.T) {
	var tr *Tracer
	tr.OnConn(ConnClientAbort, "", "") // must not panic
	if tr.ConnCounts() != nil {
		t.Error("nil tracer returned counts")
	}
}
