package lora

// Gray mapping. LoRa applies Gray coding between interleaver bits and chirp
// shifts so that a ±1 demodulation bin error flips a single bit of the
// symbol's bit group. The receiver computes bits = Gray(bin); the
// transmitter therefore sends bin = GrayInverse(bits).

// Gray returns the Gray code of v: v XOR (v >> 1). Adjacent integers map to
// words differing in exactly one bit.
func Gray(v uint32) uint32 { return v ^ v>>1 }

// GrayInverse inverts Gray: GrayInverse(Gray(v)) == v.
func GrayInverse(g uint32) uint32 {
	v := g
	for shift := uint(1); shift < 32; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}
