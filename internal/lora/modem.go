package lora

import (
	"math"

	"tnb/internal/dsp"
)

// Waveform synthesis. A packet is a continuous-phase function of time:
// 8 preamble upchirps, 2 sync symbols, 2.25 downchirps, then the data
// symbols. The synthesizer evaluates the waveform at arbitrary real times,
// so fractional start offsets and arbitrary receiver grids come for free.

// Waveform represents a packet's baseband signal as a function of time.
type Waveform struct {
	p      Params
	shifts []int // data symbol shifts
	T      float64
	n      int
	bw     float64
}

// NewWaveform builds the waveform for a packet with the given data-symbol
// shifts (as produced by Encode).
func NewWaveform(p Params, shifts []int) *Waveform {
	return &Waveform{p: p, shifts: shifts, T: p.SymbolDuration(), n: p.N(), bw: p.Bandwidth}
}

// Duration returns the total packet duration in seconds.
func (w *Waveform) Duration() float64 {
	return (PreambleUpchirps + SyncSymbols + float64(DownchirpQuarters)/4 + float64(len(w.shifts))) * w.T
}

// NumDataSymbols returns the number of data symbols in the packet.
func (w *Waveform) NumDataSymbols() int { return len(w.shifts) }

// DataStart returns the time offset of the first data symbol.
func (w *Waveform) DataStart() float64 {
	return (PreambleUpchirps + SyncSymbols + float64(DownchirpQuarters)/4) * w.T
}

// At evaluates the baseband waveform at time t seconds from the packet
// start. Times outside [0, Duration) return 0.
func (w *Waveform) At(t float64) complex128 {
	if t < 0 {
		return 0
	}
	k := int(t / w.T)
	u := t - float64(k)*w.T

	switch {
	case k < PreambleUpchirps:
		return SymbolAt(u, 0, w.n, w.bw)
	case k == PreambleUpchirps:
		return SymbolAt(u, SyncShift1, w.n, w.bw)
	case k == PreambleUpchirps+1:
		return SymbolAt(u, SyncShift2, w.n, w.bw)
	}
	// Downchirp section: 2.25 symbols after the sync symbols.
	dcStart := float64(PreambleUpchirps+SyncSymbols) * w.T
	dcEnd := dcStart + float64(DownchirpQuarters)/4*w.T
	if t < dcEnd {
		// Phase continues across the repeated downchirps; each full
		// downchirp restarts its own phase (chirps are cyclic).
		td := t - dcStart
		for td >= w.T {
			td -= w.T
		}
		return DownchirpAt(td, w.n, w.bw)
	}
	// Data section.
	di := int((t - dcEnd) / w.T)
	if di >= len(w.shifts) {
		return 0
	}
	ud := t - dcEnd - float64(di)*w.T
	return SymbolAt(ud, w.shifts[di], w.n, w.bw)
}

// Render samples the waveform onto a receiver grid: sample i (i ≥ 0) is
// taken at t = (i - frac)/fs where fs is the receiver rate and
// frac ∈ [0, 1) is the sub-sample start offset. The returned slice covers
// the whole packet (length ⌈(Duration·fs)+frac⌉+1).
func (w *Waveform) Render(frac float64, cfoHz float64, phase0 float64) []complex128 {
	fs := w.p.SampleRate()
	total := int(math.Ceil(w.Duration()*fs+frac)) + 1
	out := make([]complex128, total)
	for i := range out {
		t := (float64(i) - frac) / fs
		v := w.At(t)
		if v == 0 {
			continue
		}
		out[i] = v * dsp.Cis(phase0+2*math.Pi*cfoHz*t)
	}
	return out
}

// Demodulator computes signal vectors: dechirped, CFO-corrected, decimated
// N-point spectra of received symbols (paper §3). One Demodulator serves a
// fixed parameter set and may be shared across goroutines.
type Demodulator struct {
	p    Params
	ref  *RefChirps
	plan *dsp.FFTPlan
}

// NewDemodulator builds a demodulator for the parameter set.
func NewDemodulator(p Params) *Demodulator {
	return &Demodulator{p: p, ref: NewRefChirps(p.SF), plan: dsp.MustPlan(p.N())}
}

// Params returns the demodulator's parameter set.
func (d *Demodulator) Params() Params { return d.p }

// workBuffers returns scratch space; callers that demodulate many symbols
// should reuse buffers via DechirpInto.
func (d *Demodulator) newBuf() []complex128 { return make([]complex128, d.p.N()) }

// DechirpInto extracts the symbol starting at the (fractional) receiver
// sample position start from rx, dechirps it against the base downchirp,
// applies the CFO correction for cfoCycles (CFO expressed in cycles per
// symbol, paper §5.3.1) with the phase reference at symIndex symbols from
// the packet start, and writes the N-point dechirped vector into buf.
//
// Using the absolute symbol index keeps the CFO correction phase-continuous
// across the packet, which the synchronization search (paper §7, Q function)
// relies on.
// The CFO correction multiplies sample i by e^{-2πi(symIndex·cfo + cfo·i/N)};
// cfoPhases maps that to the Rotator parameters of the fused kernel.
func (d *Demodulator) cfoPhases(cfoCycles float64, symIndex int) (phase0, dphase float64) {
	if cfoCycles == 0 {
		return 0, 0
	}
	return -2 * math.Pi * float64(symIndex) * cfoCycles,
		-2 * math.Pi * cfoCycles / float64(d.p.N())
}

func (d *Demodulator) DechirpInto(buf []complex128, rx []complex128, start float64, cfoCycles float64, symIndex int) {
	phase0, dphase := d.cfoPhases(cfoCycles, symIndex)
	dsp.DechirpFused(buf, rx, start, float64(d.p.OSF), d.ref.Up, phase0, dphase)
}

// DechirpDownInto is DechirpInto against the base upchirp, used to locate
// the preamble's downchirps. A CFO tone survives dechirping unchanged
// regardless of the chirp direction, so the correction sign matches
// DechirpInto.
func (d *Demodulator) DechirpDownInto(buf []complex128, rx []complex128, start float64, cfoCycles float64, symIndex int) {
	phase0, dphase := d.cfoPhases(cfoCycles, symIndex)
	dsp.DechirpFused(buf, rx, start, float64(d.p.OSF), d.ref.Down, phase0, dphase)
}

// ComplexSignalVector returns FFT(rx_symbol ⊙ C'), the complex spectrum
// used by the synchronization search.
func (d *Demodulator) ComplexSignalVector(rx []complex128, start float64, cfoCycles float64, symIndex int) []complex128 {
	buf := d.newBuf()
	d.ComplexSignalVectorInto(buf, rx, start, cfoCycles, symIndex)
	return buf
}

// ComplexSignalVectorInto computes FFT(rx_symbol ⊙ C') into buf (length N),
// the no-copy form the fractional synchronization search runs per
// hypothesis.
func (d *Demodulator) ComplexSignalVectorInto(buf []complex128, rx []complex128, start float64, cfoCycles float64, symIndex int) {
	d.DechirpInto(buf, rx, start, cfoCycles, symIndex)
	d.plan.Forward(buf)
}

// ComplexDownVectorInto computes FFT(rx_symbol ⊙ C) into buf (length N),
// the downchirp counterpart of ComplexSignalVectorInto.
func (d *Demodulator) ComplexDownVectorInto(buf []complex128, rx []complex128, start float64, cfoCycles float64, symIndex int) {
	d.DechirpDownInto(buf, rx, start, cfoCycles, symIndex)
	d.plan.Forward(buf)
}

// SignalVectorInto computes the signal vector Y = |FFT(symbol ⊙ C')|² into
// y (length N), reusing buf (length N) as scratch. The spectrum is never
// materialized: ForwardMag squares the final butterfly stage in registers.
func (d *Demodulator) SignalVectorInto(y []float64, buf []complex128, rx []complex128, start float64, cfoCycles float64, symIndex int) {
	d.DechirpInto(buf, rx, start, cfoCycles, symIndex)
	d.plan.ForwardMag(y, buf)
}

// ForwardMagBatch computes y[r·N:(r+1)·N] = |FFT(xb[r·N:(r+1)·N])|² for rows
// stacked dechirped symbols in one shared twiddle sweep — bit-identical per
// row to the ForwardMag call inside SignalVectorInto (dsp.ForwardMagBatch's
// contract). xb is consumed as scratch. Callers dechirp each row themselves
// (DechirpInto), which keeps fractional starts and per-symbol CFO phases
// exactly as in the unbatched path.
func (d *Demodulator) ForwardMagBatch(y []float64, xb []complex128, rows int) {
	d.plan.ForwardMagBatch(y, xb, rows)
}

// SignalVector is the allocating convenience form of SignalVectorInto.
func (d *Demodulator) SignalVector(rx []complex128, start float64, cfoCycles float64, symIndex int) []float64 {
	y := make([]float64, d.p.N())
	d.SignalVectorInto(y, d.newBuf(), rx, start, cfoCycles, symIndex)
	return y
}

// DownSignalVectorInto computes |FFT(symbol ⊙ C)|² into y (length N),
// reusing buf (length N) as scratch — the downchirp counterpart of
// SignalVectorInto, used by the detector's hot path.
func (d *Demodulator) DownSignalVectorInto(y []float64, buf []complex128, rx []complex128, start float64, cfoCycles float64, symIndex int) {
	d.DechirpDownInto(buf, rx, start, cfoCycles, symIndex)
	d.plan.ForwardMag(y, buf)
}

// DownSignalVector computes |FFT(symbol ⊙ C)|², peaking for downchirps.
func (d *Demodulator) DownSignalVector(rx []complex128, start float64, cfoCycles float64, symIndex int) []float64 {
	y := make([]float64, d.p.N())
	d.DownSignalVectorInto(y, d.newBuf(), rx, start, cfoCycles, symIndex)
	return y
}

// HardDemod returns the strongest-bin shift of the symbol at start: the
// classic single-user LoRa demodulation.
func (d *Demodulator) HardDemod(rx []complex128, start float64, cfoCycles float64, symIndex int) int {
	y := d.SignalVector(rx, start, cfoCycles, symIndex)
	best, bi := 0.0, 0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
