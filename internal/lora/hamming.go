package lora

// The (8,4) Hamming code from the paper (§3). The generator matrix rows,
// with data bits first and parity bits last:
//
//	1 0 0 0 1 0 1 1
//	0 1 0 0 1 1 1 0
//	0 0 1 0 1 1 0 1
//	0 0 0 1 0 1 1 1
//
// A codeword for data nibble d (d₁ is the MSB) is the XOR of the rows
// selected by the data bits. Codewords are represented as uint8 with bit 7
// holding codeword bit 1 (so the on-air bit order matches the paper's
// column numbering: column k ↔ bit 8-k).

// generatorRows holds the four generator matrix rows in the bit-7-first
// representation.
var generatorRows = [4]uint8{
	0b10001011,
	0b01001110,
	0b00101101,
	0b00010111,
}

// Codebook16 lists the 16 complete (8,4) codewords indexed by data nibble
// (nibble bit 3 ↔ data bit d₁).
var Codebook16 = buildCodebook()

func buildCodebook() [16]uint8 {
	var cb [16]uint8
	for d := 0; d < 16; d++ {
		var cw uint8
		for row := 0; row < 4; row++ {
			if d&(1<<(3-row)) != 0 {
				cw ^= generatorRows[row]
			}
		}
		cb[d] = cw
	}
	return cb
}

// HammingEncode returns the transmitted codeword for data nibble d at coding
// rate cr: the first 4+cr bits of the complete codeword, except cr 1 where
// the single parity bit is the checksum (XOR) of the four data bits. The
// result is left-aligned in a uint8 (bit 7 = first transmitted bit); the low
// 4-cr bits are zero.
func HammingEncode(d uint8, cr int) uint8 {
	d &= 0x0F
	if cr == 1 {
		chk := (d>>3 ^ d>>2 ^ d>>1 ^ d) & 1
		return d<<4 | chk<<3
	}
	full := Codebook16[d]
	mask := uint8(0xFF) << uint(8-(4+cr))
	return full & mask
}

// checksumBit returns the CR 1 parity (XOR of the 4 data bits) for nibble d.
func checksumBit(d uint8) uint8 {
	return (d>>3 ^ d>>2 ^ d>>1 ^ d) & 1
}

// popcount8 is a tiny 8-bit popcount used in the distance computation.
func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// HammingDecodeDefault implements LoRa's default decoder: it returns the
// data nibble of the valid codeword closest in Hamming distance to the
// received word, considering only the first 4+cr bits. The second return
// is the distance to the chosen codeword, the third reports whether the
// choice was ambiguous (two codewords at the same minimum distance; the
// lower data nibble is returned in that case).
//
// For cr 1 and 2 the minimum code distance is below 3, so the decoder can
// only detect errors: the nibble with matching data bits is returned and
// the distance reports how many bits disagree.
func HammingDecodeDefault(received uint8, cr int) (data uint8, dist int, ambiguous bool) {
	if cr == 1 {
		d := received >> 4
		chk := received >> 3 & 1
		if checksumBit(d) == chk {
			return d, 0, false
		}
		return d, 1, true
	}
	mask := uint8(0xFF) << uint(8-(4+cr))
	best, bestDist, ties := uint8(0), 9, 0
	for d := 0; d < 16; d++ {
		dist := popcount8((Codebook16[d] ^ received) & mask)
		if dist < bestDist {
			best, bestDist, ties = uint8(d), dist, 1
		} else if dist == bestDist {
			ties++
		}
	}
	return best, bestDist, ties > 1
}

// PuncturedCodeword returns the first 4+cr bits of the complete codeword for
// nibble d, left-aligned (same layout as HammingEncode for cr ≥ 2).
func PuncturedCodeword(d uint8, cr int) uint8 {
	mask := uint8(0xFF) << uint(8-(4+cr))
	return Codebook16[d&0x0F] & mask
}

// MinDistance returns the minimum Hamming distance of the punctured code at
// coding rate cr (cr 1 uses the checksum construction).
func MinDistance(cr int) int {
	if cr == 1 {
		// 5-bit code: 4 data bits + XOR checksum; weight of any nonzero
		// codeword is at least 2.
		return 2
	}
	mask := uint8(0xFF) << uint(8-(4+cr))
	minD := 9
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			d := popcount8((Codebook16[a] ^ Codebook16[b]) & mask)
			if d < minD {
				minD = d
			}
		}
	}
	return minD
}
