package lora

// Payload whitening. LoRa XORs the payload with a pseudo-random sequence to
// avoid long runs. We use the byte-wise LFSR with polynomial
// x⁸+x⁶+x⁵+x⁴+1 seeded with 0xFF, one of the documented Semtech variants;
// whitening and de-whitening are the same XOR operation so the chain is
// self-inverse.

const whitenSeed = 0xFF

// whitenNext advances the whitening LFSR one byte.
func whitenNext(state uint8) uint8 {
	// Fibonacci LFSR stepped 8 times; per-bit feedback b7 ^ b5 ^ b4 ^ b3
	// corresponds to the x⁸+x⁶+x⁵+x⁴+1 polynomial.
	s := state
	for i := 0; i < 8; i++ {
		fb := (s>>7 ^ s>>5 ^ s>>4 ^ s>>3) & 1
		s = s<<1 | fb
	}
	return s
}

// WhitenSequence returns the first n bytes of the whitening sequence.
func WhitenSequence(n int) []uint8 {
	out := make([]uint8, n)
	s := uint8(whitenSeed)
	for i := 0; i < n; i++ {
		out[i] = s
		s = whitenNext(s)
	}
	return out
}

// Whiten XORs data in place with the whitening sequence. Applying it twice
// restores the original data.
func Whiten(data []uint8) {
	s := uint8(whitenSeed)
	for i := range data {
		data[i] ^= s
		s = whitenNext(s)
	}
}
