// Package lora implements the LoRa physical layer used by TnB: chirp
// modulation and demodulation, Gray mapping, the diagonal interleaver,
// payload whitening, the (8,4) Hamming code with the generator matrix from
// the paper, the explicit PHY header with its reduced-rate first block, and
// the payload CRC. Encoding and decoding are exact inverses, so a packet
// modulated by this package and demodulated without channel impairments
// yields the original payload bit-for-bit.
package lora

import "fmt"

// Standard LoRa preamble structure (paper §3 and artifact appendix B.3.4):
// 8 base upchirps, 2 sync symbols, 2.25 downchirps.
const (
	PreambleUpchirps  = 8
	SyncSymbols       = 2
	DownchirpQuarters = 9 // 2.25 downchirps = 9 quarter-symbols
	// Sync symbol shifts: the artifact's devices transmit peaks at
	// (1-indexed) locations 9 and 17, i.e. shifts 8 and 16.
	SyncShift1 = 8
	SyncShift2 = 16
)

// HeaderSymbols is the number of symbols in the explicit PHY header block
// (CR 4 → 4+4 interleaver columns).
const HeaderSymbols = 8

// Params bundles the radio parameters of a LoRa link. The zero value is not
// usable; construct with NewParams.
type Params struct {
	SF        int     // spreading factor, 6..12
	CR        int     // coding rate, 1..4 (number of parity bits sent)
	Bandwidth float64 // Hz, e.g. 125 kHz
	OSF       int     // receiver over-sampling factor, ≥ 1
	// LDRO enables the low-data-rate optimization: payload symbols carry
	// SF-2 bits (like the header block), trading rate for robustness to
	// clock drift on long symbols. Commodity radios enable it for symbol
	// times above 16 ms (SF 11/12 at 125 kHz); the paper's SF 8/10
	// configurations run without it.
	LDRO bool
}

// NewParams validates and returns a parameter set. Defaults from the paper's
// Table 3 are applied for zero Bandwidth (125 kHz) and OSF (8).
func NewParams(sf, cr int, bandwidth float64, osf int) (Params, error) {
	if bandwidth == 0 {
		bandwidth = 125e3
	}
	if osf == 0 {
		osf = 8
	}
	p := Params{SF: sf, CR: cr, Bandwidth: bandwidth, OSF: osf}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// MustParams is NewParams that panics on error, for tests and examples.
func MustParams(sf, cr int, bandwidth float64, osf int) Params {
	p, err := NewParams(sf, cr, bandwidth, osf)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate reports whether the parameter combination is supported.
func (p Params) Validate() error {
	if p.SF < 6 || p.SF > 12 {
		return fmt.Errorf("lora: SF %d out of range [6, 12]", p.SF)
	}
	if p.CR < 1 || p.CR > 4 {
		return fmt.Errorf("lora: CR %d out of range [1, 4]", p.CR)
	}
	if p.Bandwidth <= 0 {
		return fmt.Errorf("lora: bandwidth %g must be positive", p.Bandwidth)
	}
	if p.OSF < 1 {
		return fmt.Errorf("lora: OSF %d must be at least 1", p.OSF)
	}
	return nil
}

// N returns the number of chips per symbol, 2^SF.
func (p Params) N() int { return 1 << p.SF }

// SymbolSamples returns the number of receiver samples per symbol, 2^SF·OSF.
func (p Params) SymbolSamples() int { return p.N() * p.OSF }

// SampleRate returns the receiver sample rate in Hz.
func (p Params) SampleRate() float64 { return p.Bandwidth * float64(p.OSF) }

// SymbolDuration returns the symbol time in seconds.
func (p Params) SymbolDuration() float64 { return float64(p.N()) / p.Bandwidth }

// PreambleSymbols returns the preamble length in symbols, including the
// 2.25 downchirps (as a fractional count).
func (p Params) PreambleSymbols() float64 {
	return PreambleUpchirps + SyncSymbols + float64(DownchirpQuarters)/4
}

// PreambleSamples returns the preamble length in receiver samples.
func (p Params) PreambleSamples() int {
	return (PreambleUpchirps+SyncSymbols)*p.SymbolSamples() + DownchirpQuarters*p.SymbolSamples()/4
}

// codewordLen returns the transmitted codeword length in bits, 4+CR.
func (p Params) codewordLen() int { return 4 + p.CR }

// headerRows returns the number of codeword rows in the reduced-rate first
// block (SF-2, per the LoRa specification's low-rate header encoding).
func (p Params) headerRows() int { return p.SF - 2 }

// payloadRows returns the codeword rows per payload block: SF normally,
// SF-2 with the low-data-rate optimization.
func (p Params) payloadRows() int {
	if p.LDRO {
		return p.SF - 2
	}
	return p.SF
}

// PayloadSymbols returns the number of data symbols (after the preamble)
// needed to carry payloadLen bytes plus the 2-byte CRC: the 8-symbol header
// block plus full payload blocks.
func (p Params) PayloadSymbols(payloadLen int) int {
	nib := totalNibbles(payloadLen)
	inHeader := p.headerRows() - headerNibbles // payload nibbles in first block
	if inHeader < 0 {
		inHeader = 0
	}
	rest := nib - inHeader
	if rest < 0 {
		rest = 0
	}
	rows := p.payloadRows()
	blocks := (rest + rows - 1) / rows
	return HeaderSymbols + blocks*p.codewordLen()
}

// PacketSymbols returns the full packet length in symbols including the
// preamble (rounded up for the 2.25 downchirps).
func (p Params) PacketSymbols(payloadLen int) float64 {
	return p.PreambleSymbols() + float64(p.PayloadSymbols(payloadLen))
}

// PacketSamples returns the full packet length in receiver samples.
func (p Params) PacketSamples(payloadLen int) int {
	return p.PreambleSamples() + p.PayloadSymbols(payloadLen)*p.SymbolSamples()
}

// totalNibbles returns the number of payload nibbles on air for a payload of
// n bytes: payload plus the 16-bit CRC.
func totalNibbles(n int) int { return 2 * (n + crcBytes) }

// String describes the parameter set compactly, e.g. "SF8-CR4".
func (p Params) String() string {
	return fmt.Sprintf("SF%d-CR%d", p.SF, p.CR)
}
