package lora

// Packet-level CRC. LoRa appends a 16-bit CRC over the payload; BEC relies
// on it to select the correct repaired packet among candidates (paper §6.9).
// We use CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the variant used by
// Semtech radios.

const crcBytes = 2

// CRC16 computes the CRC-16/CCITT-FALSE checksum of data.
func CRC16(data []uint8) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// AppendCRC returns payload with its 16-bit CRC appended big-endian.
func AppendCRC(payload []uint8) []uint8 {
	crc := CRC16(payload)
	out := make([]uint8, 0, len(payload)+crcBytes)
	out = append(out, payload...)
	return append(out, uint8(crc>>8), uint8(crc))
}

// CheckCRC verifies and strips the trailing CRC. It returns the payload and
// true when the CRC matches.
func CheckCRC(data []uint8) ([]uint8, bool) {
	if len(data) < crcBytes {
		return nil, false
	}
	payload := data[:len(data)-crcBytes]
	want := uint16(data[len(data)-2])<<8 | uint16(data[len(data)-1])
	return payload, CRC16(payload) == want
}
