package lora

import (
	"testing"
	"testing/quick"
)

func TestCodebookMatchesPaperExample(t *testing.T) {
	// Paper §3: data '1001' encodes to '10011100' (rows 1 and 4 summed).
	d := uint8(0b1001)
	if got := Codebook16[d]; got != 0b10011100 {
		t.Errorf("codeword for 1001 = %08b, want 10011100", got)
	}
}

func TestCodebookWeightDistribution(t *testing.T) {
	// The paper's generator matrix produces the extended (8,4) Hamming
	// code: every nonzero codeword has weight 4 or 8 (appendix A.1 relies
	// on the weight-4 codewords for companion groups).
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if d := popcount8(Codebook16[a] ^ Codebook16[b]); d != 4 && d != 8 {
				t.Errorf("codewords %d,%d at distance %d", a, b, d)
			}
		}
	}
}

func TestCompanionExampleFromPaper(t *testing.T) {
	// Paper §6.1 (CR 3): a vector with 1s only in columns 2, 3, 7 is a
	// valid punctured codeword, making column 3 the companion of {2, 7}.
	target := uint8(0b01100010) // columns 2, 3, 7 set (bit 7 = column 1)
	found := false
	for d := 0; d < 16; d++ {
		if PuncturedCodeword(uint8(d), 3) == target {
			found = true
		}
	}
	if !found {
		t.Errorf("no CR3 codeword with 1s in columns 2,3,7 (%07b)", target>>1)
	}
}

func TestMinDistance(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 3, 4: 4}
	for cr, want := range cases {
		if got := MinDistance(cr); got != want {
			t.Errorf("MinDistance(CR%d) = %d, want %d", cr, got, want)
		}
	}
}

func TestHammingEncodeDecodeClean(t *testing.T) {
	for cr := 1; cr <= 4; cr++ {
		for d := uint8(0); d < 16; d++ {
			cw := HammingEncode(d, cr)
			got, dist, _ := HammingDecodeDefault(cw, cr)
			if got != d || dist != 0 {
				t.Errorf("CR%d d=%d: decoded %d dist %d", cr, d, got, dist)
			}
		}
	}
}

func TestHammingCorrectsSingleBitCR3CR4(t *testing.T) {
	for _, cr := range []int{3, 4} {
		bits := 4 + cr
		for d := uint8(0); d < 16; d++ {
			cw := HammingEncode(d, cr)
			for b := 0; b < bits; b++ {
				corrupted := cw ^ 1<<uint(7-b)
				got, dist, amb := HammingDecodeDefault(corrupted, cr)
				if got != d {
					t.Errorf("CR%d d=%d flip bit %d: decoded %d", cr, d, b, got)
				}
				if dist != 1 || amb {
					t.Errorf("CR%d d=%d flip bit %d: dist=%d amb=%v", cr, d, b, dist, amb)
				}
			}
		}
	}
}

func TestHammingDetectsSingleBitCR1CR2(t *testing.T) {
	for _, cr := range []int{1, 2} {
		bits := 4 + cr
		for d := uint8(0); d < 16; d++ {
			cw := HammingEncode(d, cr)
			for b := 0; b < bits; b++ {
				corrupted := cw ^ 1<<uint(7-b)
				_, dist, _ := HammingDecodeDefault(corrupted, cr)
				if dist == 0 {
					t.Errorf("CR%d d=%d flip bit %d: error not detected", cr, d, b)
				}
			}
		}
	}
}

func TestCR1ChecksumBit(t *testing.T) {
	// CR 1 transmits 4 data bits plus their XOR (paper §3).
	for d := uint8(0); d < 16; d++ {
		cw := HammingEncode(d, 1)
		if cw>>4 != d {
			t.Errorf("d=%d: data bits %04b", d, cw>>4)
		}
		want := (d>>3 ^ d>>2 ^ d>>1 ^ d) & 1
		if cw>>3&1 != want {
			t.Errorf("d=%d: checksum bit %d, want %d", d, cw>>3&1, want)
		}
		if cw&0x07 != 0 {
			t.Errorf("d=%d: unused bits set: %08b", d, cw)
		}
	}
}

func TestHammingLinearity(t *testing.T) {
	// The code is linear: encode(a) XOR encode(b) == encode(a XOR b).
	f := func(a, b uint8) bool {
		a, b = a&0x0F, b&0x0F
		return Codebook16[a]^Codebook16[b] == Codebook16[a^b]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPuncturedCodewordMask(t *testing.T) {
	for cr := 2; cr <= 4; cr++ {
		for d := uint8(0); d < 16; d++ {
			pc := PuncturedCodeword(d, cr)
			if pc != HammingEncode(d, cr) {
				t.Errorf("CR%d d=%d: punctured %08b vs encode %08b", cr, d, pc, HammingEncode(d, cr))
			}
			if low := pc & (0xFF >> uint(4+cr)); low != 0 {
				t.Errorf("CR%d d=%d: punctured bits leak: %08b", cr, d, pc)
			}
		}
	}
}
