package lora

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"tnb/internal/dsp"
)

func TestRefChirpsUnitAmplitude(t *testing.T) {
	r := NewRefChirps(8)
	for i, v := range r.Up {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("upchirp sample %d has magnitude %g", i, cmplx.Abs(v))
		}
		if r.Down[i] != complex(real(v), -imag(v)) {
			t.Fatalf("downchirp is not the conjugate at %d", i)
		}
	}
}

func TestSymbolAtMatchesNativeRateReference(t *testing.T) {
	// Sampling the continuous-time shift-h chirp at the chip rate must
	// equal C[i]·e^{j2πhi/N} (the cyclic-shift property the demodulator
	// depends on).
	for _, sf := range []int{7, 8, 10} {
		n := 1 << sf
		bw := 125e3
		ref := NewRefChirps(sf)
		for _, h := range []int{0, 1, n / 3, n - 1} {
			for i := 0; i < n; i++ {
				got := SymbolAt(float64(i)/bw, h, n, bw)
				want := ref.Up[i] * cisTest(2*math.Pi*float64(h)*float64(i)/float64(n))
				if cmplx.Abs(got-want) > 1e-6 {
					t.Fatalf("SF%d h=%d i=%d: got %v want %v", sf, h, i, got, want)
				}
			}
		}
	}
}

func cisTest(th float64) complex128 {
	s, c := math.Sincos(th)
	return complex(c, s)
}

func TestModulateDemodAllShifts(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	buf := make([]complex128, p.SymbolSamples())
	for h := 0; h < p.N(); h += 7 {
		ModulateSymbol(buf, h, p.N(), p.Bandwidth, p.OSF)
		if got := d.HardDemod(buf, 0, 0, 0); got != h {
			t.Fatalf("h=%d demodulated as %d", h, got)
		}
	}
}

func TestDemodWithIntegerTimingOffset(t *testing.T) {
	// A whole-packet render placed at an integer offset demodulates
	// correctly when the demod window is aligned to it.
	p := MustParams(8, 2, 125e3, 8)
	payload := []uint8{1, 2, 3, 4, 5, 6, 7, 8}
	shifts, _, err := Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWaveform(p, shifts)
	sig := w.Render(0, 0, 0)
	d := NewDemodulator(p)
	dataStart := w.DataStart() * p.SampleRate()
	got := make([]int, len(shifts))
	for k := range shifts {
		got[k] = d.HardDemod(sig, dataStart+float64(k*p.SymbolSamples()), 0, k)
	}
	res := DecodeDefault(p, got)
	if !res.OK {
		t.Fatal("decode of rendered packet failed")
	}
	for i := range payload {
		if res.Payload[i] != payload[i] {
			t.Fatalf("payload byte %d mismatch", i)
		}
	}
}

func TestDemodWithFractionalOffsetAndCFO(t *testing.T) {
	// Render with a sub-sample offset and a CFO; demodulate with the true
	// parameters. All symbols must demodulate exactly.
	p := MustParams(8, 4, 125e3, 8)
	payload := []uint8{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6}
	shifts, _, err := Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWaveform(p, shifts)
	frac := 0.37
	cfoHz := 3000.0 // within the paper's ±4.88 kHz
	sig := w.Render(frac, cfoHz, 1.1)

	d := NewDemodulator(p)
	cfoCycles := cfoHz * p.SymbolDuration()
	dataStart := w.DataStart()*p.SampleRate() + frac
	preambleSyms := int(math.Round(w.DataStart() / p.SymbolDuration() * 4)) // quarter counts; unused
	_ = preambleSyms
	symOffset := int(math.Round(w.DataStart() / p.SymbolDuration()))
	errors := 0
	got := make([]int, len(shifts))
	for k := range shifts {
		got[k] = d.HardDemod(sig, dataStart+float64(k*p.SymbolSamples()), cfoCycles, symOffset+k)
		if got[k] != shifts[k] {
			errors++
		}
	}
	if errors > 0 {
		t.Fatalf("%d/%d symbol errors with known offset and CFO", errors, len(shifts))
	}
	res := DecodeDefault(p, got)
	if !res.OK {
		t.Fatal("decode failed")
	}
}

func TestPeakHeightDropsWithTimingError(t *testing.T) {
	// Paper Fig. 1(b): a misaligned window lowers the peak.
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	buf := make([]complex128, 2*p.SymbolSamples())
	ModulateSymbol(buf[:p.SymbolSamples()], 40, p.N(), p.Bandwidth, p.OSF)
	aligned := peakHeight(d.SignalVector(buf, 0, 0, 0))
	quarterOff := peakHeight(d.SignalVector(buf, float64(p.SymbolSamples())/4, 0, 0))
	if quarterOff > 0.7*aligned {
		t.Errorf("quarter-symbol offset peak %g vs aligned %g: not sensitive enough", quarterOff, aligned)
	}
}

func TestPeakHeightDropsWithResidualCFO(t *testing.T) {
	// Paper Fig. 1(c): 0.5 cycles of residual CFO severely lowers the peak.
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	buf := make([]complex128, p.SymbolSamples())
	ModulateSymbol(buf, 40, p.N(), p.Bandwidth, p.OSF)
	clean := peakHeight(d.SignalVector(buf, 0, 0, 0))
	// Apply a half-bin CFO to the signal, demodulate without correction.
	cfoHz := 0.5 / p.SymbolDuration()
	shifted := make([]complex128, len(buf))
	for i := range buf {
		shifted[i] = buf[i] * cisTest(2*math.Pi*cfoHz*float64(i)/p.SampleRate())
	}
	residual := peakHeight(d.SignalVector(shifted, 0, 0, 0))
	if residual > 0.55*clean {
		t.Errorf("0.5-cycle residual CFO peak %g vs clean %g", residual, clean)
	}
	// Correcting with the right CFO restores the peak.
	corrected := peakHeight(d.SignalVector(shifted, 0, 0.5, 0))
	if corrected < 0.95*clean {
		t.Errorf("corrected peak %g vs clean %g", corrected, clean)
	}
}

func peakHeight(y []float64) float64 {
	var m float64
	for _, v := range y {
		if v > m {
			m = v
		}
	}
	return m
}

func TestWaveformDuration(t *testing.T) {
	p := MustParams(8, 1, 125e3, 8)
	shifts := make([]int, 10)
	w := NewWaveform(p, shifts)
	want := (8 + 2 + 2.25 + 10) * p.SymbolDuration()
	if math.Abs(w.Duration()-want) > 1e-12 {
		t.Errorf("Duration = %g, want %g", w.Duration(), want)
	}
	if w.NumDataSymbols() != 10 {
		t.Errorf("NumDataSymbols = %d", w.NumDataSymbols())
	}
	if w.At(-1) != 0 || w.At(w.Duration()+1) != 0 {
		t.Error("waveform should be 0 outside its duration")
	}
}

func TestWaveformUnitEnvelope(t *testing.T) {
	p := MustParams(7, 4, 125e3, 4)
	shifts, _, _ := Encode(p, []uint8{9, 9, 9})
	w := NewWaveform(p, shifts)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		tm := rng.Float64() * w.Duration() * 0.9999
		if v := w.At(tm); math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("waveform magnitude %g at t=%g", cmplx.Abs(v), tm)
		}
	}
}

func TestDownchirpSectionDechirpsWithUpchirp(t *testing.T) {
	// The 2.25 downchirps must produce a clean peak when dechirped with
	// the base upchirp — the detector's downchirp path.
	p := MustParams(8, 4, 125e3, 8)
	shifts, _, _ := Encode(p, []uint8{1})
	w := NewWaveform(p, shifts)
	sig := w.Render(0, 0, 0)
	d := NewDemodulator(p)
	dcStart := float64((PreambleUpchirps + SyncSymbols) * p.SymbolSamples())
	y := d.DownSignalVector(sig, dcStart, 0, 0)
	bi, best := 0, 0.0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	if bi != 0 {
		t.Errorf("downchirp peak at bin %d, want 0", bi)
	}
	// And the peak must carry nearly all the energy.
	var total float64
	for _, v := range y {
		total += v
	}
	if best < 0.9*total {
		t.Errorf("downchirp peak carries %.2f of energy", best/total)
	}
}

func TestPreambleUpchirpPeaks(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	shifts, _, _ := Encode(p, []uint8{1, 2, 3})
	w := NewWaveform(p, shifts)
	sig := w.Render(0, 0, 0)
	d := NewDemodulator(p)
	for k := 0; k < PreambleUpchirps; k++ {
		h := d.HardDemod(sig, float64(k*p.SymbolSamples()), 0, k)
		if h != 0 {
			t.Errorf("preamble symbol %d demodulates to %d", k, h)
		}
	}
	// Sync symbols at shifts 8 and 16.
	if h := d.HardDemod(sig, float64(PreambleUpchirps*p.SymbolSamples()), 0, 0); h != SyncShift1 {
		t.Errorf("sync 1 = %d, want %d", h, SyncShift1)
	}
	if h := d.HardDemod(sig, float64((PreambleUpchirps+1)*p.SymbolSamples()), 0, 0); h != SyncShift2 {
		t.Errorf("sync 2 = %d, want %d", h, SyncShift2)
	}
}

func BenchmarkEncode16Bytes(b *testing.B) {
	p := MustParams(8, 4, 125e3, 8)
	payload := make([]uint8, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(p, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignalVectorSF8(b *testing.B) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	sig := make([]complex128, 2*p.SymbolSamples())
	ModulateSymbol(sig[:p.SymbolSamples()], 100, p.N(), p.Bandwidth, p.OSF)
	y := make([]float64, p.N())
	buf := make([]complex128, p.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SignalVectorInto(y, buf, sig, 0.25, 0.3, i&7)
	}
}

// dechirpLegacyInto is the pre-kernel-layer 3-pass dechirp (Resample →
// MulConj → per-sample Cis rotation), kept as the reference the fused
// kernel is measured and property-tested against.
func dechirpLegacyInto(d *Demodulator, buf, rx []complex128, start, cfoCycles float64, symIndex int, down bool) {
	n := d.p.N()
	dsp.Resample(buf, rx, start, float64(d.p.OSF))
	ref := d.ref.Up
	if down {
		ref = d.ref.Down
	}
	dsp.MulConj(buf, buf, ref)
	if cfoCycles != 0 {
		base := float64(symIndex) * cfoCycles
		for i := 0; i < n; i++ {
			ph := -2 * math.Pi * (base + cfoCycles*float64(i)/float64(n))
			buf[i] *= dsp.Cis(ph)
		}
	}
}

// TestDechirpIntoMatchesLegacy is the modem-level property test: across
// random fractional starts, CFOs and symbol indices (and both chirp
// directions), the fused DechirpInto path matches the legacy 3-pass path
// within 1e-9 relative error.
func TestDechirpIntoMatchesLegacy(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	rng := rand.New(rand.NewSource(41))
	rx := make([]complex128, 4*p.SymbolSamples())
	for i := range rx {
		rx[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	scale := 0.0
	for _, v := range rx {
		if a := cmplx.Abs(v); a > scale {
			scale = a
		}
	}
	n := p.N()
	got := make([]complex128, n)
	want := make([]complex128, n)
	for trial := 0; trial < 200; trial++ {
		start := rng.Float64()*float64(3*p.SymbolSamples()) - 100
		cfo := 0.0
		if trial%4 != 0 {
			cfo = rng.Float64()*9 - 4.5
		}
		symIdx := rng.Intn(40)
		down := trial%2 == 1
		if down {
			d.DechirpDownInto(got, rx, start, cfo, symIdx)
		} else {
			d.DechirpInto(got, rx, start, cfo, symIdx)
		}
		dechirpLegacyInto(d, want, rx, start, cfo, symIdx, down)
		for i := range got {
			if e := cmplx.Abs(got[i] - want[i]); e > 1e-9*scale {
				t.Fatalf("trial %d (start=%g cfo=%g sym=%d down=%t) sample %d: fused %v vs legacy %v (err %g)",
					trial, start, cfo, symIdx, down, i, got[i], want[i], e)
			}
		}
	}
}

// BenchmarkDechirp contrasts the fused single-pass kernel with the legacy
// 3-pass path on one SF8 symbol, for the two hot shapes: the fractional
// CFO-corrected dechirp of the sync search and sigcalc, and the
// integer-aligned CFO-free dechirp of the detection scan.
func BenchmarkDechirp(b *testing.B) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	rng := rand.New(rand.NewSource(42))
	rx := make([]complex128, 4*p.SymbolSamples())
	for i := range rx {
		rx[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	buf := make([]complex128, p.N())
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.DechirpInto(buf, rx, 1000.37, -2.25, i&7)
		}
	})
	b.Run("fused_scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.DechirpInto(buf, rx, float64(p.SymbolSamples()), 0, 0)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dechirpLegacyInto(d, buf, rx, 1000.37, -2.25, i&7, false)
		}
	})
	b.Run("legacy_scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dechirpLegacyInto(d, buf, rx, float64(p.SymbolSamples()), 0, 0, false)
		}
	})
}

func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	rng := rand.New(rand.NewSource(5))
	rx := make([]complex128, 3*p.SymbolSamples())
	for i := range rx {
		rx[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	n := p.N()
	y := make([]float64, n)
	cbuf := make([]complex128, n)
	for _, cfo := range []float64{0, -2.25} {
		start, symIdx := 17.5, 3

		want := d.DownSignalVector(rx, start, cfo, symIdx)
		d.DownSignalVectorInto(y, cbuf, rx, start, cfo, symIdx)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("cfo=%g: DownSignalVectorInto[%d] = %v, want %v", cfo, i, y[i], want[i])
			}
		}

		wantC := d.ComplexSignalVector(rx, start, cfo, symIdx)
		d.ComplexSignalVectorInto(cbuf, rx, start, cfo, symIdx)
		for i := range cbuf {
			if cbuf[i] != wantC[i] {
				t.Fatalf("cfo=%g: ComplexSignalVectorInto[%d] = %v, want %v", cfo, i, cbuf[i], wantC[i])
			}
		}
	}
}
