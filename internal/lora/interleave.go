package lora

// Diagonal interleaving. A code block is a rows × cols bit matrix where each
// row is one (punctured) codeword and each column holds the bits carried by
// one symbol (paper Fig. 2). LoRa additionally rotates column j by j rows so
// that a burst hitting one symbol spreads across codeword bit positions; the
// column ↔ symbol correspondence that BEC relies on is preserved.

// Block is a code block: Bits[row][col], rows codewords of cols bits each.
type Block struct {
	Rows, Cols int
	Bits       [][]uint8 // values 0 or 1
}

// NewBlock allocates a zeroed rows×cols block backed by one allocation.
func NewBlock(rows, cols int) *Block {
	flat := make([]uint8, rows*cols)
	bits := make([][]uint8, rows)
	for r := range bits {
		bits[r], flat = flat[:cols], flat[cols:]
	}
	return &Block{Rows: rows, Cols: cols, Bits: bits}
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	c := NewBlock(b.Rows, b.Cols)
	for r := range b.Bits {
		copy(c.Bits[r], b.Bits[r])
	}
	return c
}

// Equal reports whether two blocks have identical dimensions and bits.
func (b *Block) Equal(o *Block) bool {
	if b.Rows != o.Rows || b.Cols != o.Cols {
		return false
	}
	for r := range b.Bits {
		for c := range b.Bits[r] {
			if b.Bits[r][c] != o.Bits[r][c] {
				return false
			}
		}
	}
	return true
}

// SetRowCodeword stores the left-aligned codeword cw (bit 7 first) into row
// r, taking the first Cols bits.
func (b *Block) SetRowCodeword(r int, cw uint8) {
	for c := 0; c < b.Cols; c++ {
		b.Bits[r][c] = cw >> uint(7-c) & 1
	}
}

// RowCodeword returns row r packed left-aligned into a uint8 (bit 7 = column
// 1).
func (b *Block) RowCodeword(r int) uint8 {
	var cw uint8
	for c := 0; c < b.Cols; c++ {
		cw |= b.Bits[r][c] << uint(7-c)
	}
	return cw
}

// Interleave converts the block into symbol bit-groups. Symbol j's value is
// built from column j with the diagonal rotation: bit of row i goes to
// symbol bit position (i + j) mod Rows, with row 0 mapping to the most
// significant of the Rows bits. The returned slice has Cols entries, each in
// [0, 2^Rows).
func (b *Block) Interleave() []uint32 {
	syms := make([]uint32, b.Cols)
	for j := 0; j < b.Cols; j++ {
		var v uint32
		for i := 0; i < b.Rows; i++ {
			pos := (i + j) % b.Rows
			if b.Bits[i][j] != 0 {
				v |= 1 << uint(b.Rows-1-pos)
			}
		}
		syms[j] = v
	}
	return syms
}

// DeinterleaveInto fills the block from the symbol bit-groups, inverting
// Interleave. len(syms) must equal Cols.
func (b *Block) DeinterleaveInto(syms []uint32) {
	for j := 0; j < b.Cols && j < len(syms); j++ {
		v := syms[j]
		for i := 0; i < b.Rows; i++ {
			pos := (i + j) % b.Rows
			b.Bits[i][j] = uint8(v >> uint(b.Rows-1-pos) & 1)
		}
	}
}
