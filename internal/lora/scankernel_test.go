package lora

import (
	"math"
	"math/rand"
	"testing"
)

// scanTestTrace renders a packet into a noisy trace long enough for several
// scan windows, including a partial window off the end.
func scanTestTrace(t *testing.T, p Params) []complex128 {
	t.Helper()
	shifts, _, err := Encode(p, []uint8{0xA5, 0x5A, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sig := NewWaveform(p, shifts).Render(0.3, 40, 0.7)
	rng := rand.New(rand.NewSource(17))
	rx := make([]complex128, len(sig)+3*p.SymbolSamples()+123)
	for i := range rx {
		rx[i] = complex(0.05*rng.NormFloat64(), 0.05*rng.NormFloat64())
	}
	off := p.SymbolSamples() + 37
	for i, v := range sig {
		rx[off+i] += v
	}
	return rx
}

// TestScanKernelMatchesSignalVector pins the batched rev-load kernel against
// SignalVectorInto bit for bit, across batch sizes and windows that run off
// the end of the trace.
func TestScanKernelMatchesSignalVector(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	rx := scanTestTrace(t, p)
	n := p.N()
	sym := p.SymbolSamples()
	nwin := len(rx)/sym + 1 // last start runs past the end

	want := make([]float64, n)
	buf := make([]complex128, n)
	k := d.NewScanKernel()
	for _, rows := range []int{1, 3, 8} {
		y := make([]float64, rows*n)
		for g0 := 0; g0 < nwin; g0 += rows {
			r := min(rows, nwin-g0)
			k.UpVectorsInto(y[:r*n], rx, g0*sym, sym, r)
			for j := 0; j < r; j++ {
				d.SignalVectorInto(want, buf, rx, float64((g0+j)*sym), 0, 0)
				for i := range want {
					if math.Float64bits(y[j*n+i]) != math.Float64bits(want[i]) {
						t.Fatalf("rows=%d window=%d bin=%d: kernel=%v, SignalVectorInto=%v",
							rows, g0+j, i, y[j*n+i], want[i])
					}
				}
			}
		}
	}
}

// TestScanKernelZeroSteadyStateAllocs pins the kernel's reuse contract.
func TestScanKernelZeroSteadyStateAllocs(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	rx := scanTestTrace(t, p)
	n, sym := p.N(), p.SymbolSamples()
	const rows = 8
	k := d.NewScanKernel()
	y := make([]float64, rows*n)
	k.UpVectorsInto(y, rx, 0, sym, rows)
	a := testing.AllocsPerRun(50, func() { k.UpVectorsInto(y, rx, 0, sym, rows) })
	if a != 0 {
		t.Fatalf("UpVectorsInto allocates %v/op in steady state", a)
	}
}

func BenchmarkScanKernel(b *testing.B) {
	p := MustParams(8, 4, 125e3, 8)
	d := NewDemodulator(p)
	shifts, _, _ := Encode(p, []uint8{1, 2, 3, 4, 5, 6, 7, 8})
	rx := NewWaveform(p, shifts).Render(0, 0, 0)
	n, sym := p.N(), p.SymbolSamples()
	const rows = 8
	b.Run("per-window", func(b *testing.B) {
		y := make([]float64, n)
		buf := make([]complex128, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rows; r++ {
				d.SignalVectorInto(y, buf, rx, float64(r*sym), 0, 0)
			}
		}
	})
	b.Run("batched-kernel", func(b *testing.B) {
		k := d.NewScanKernel()
		y := make([]float64, rows*n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.UpVectorsInto(y, rx, 0, sym, rows)
		}
	})
}
