package lora

import "fmt"

// Explicit PHY header. The header occupies the first headerNibbles codeword
// rows of the reduced-rate first block and announces the payload length and
// coding rate of the remaining blocks, protected by a 5-bit checksum
// (paper §3: "The PHY header consists of 8 symbols and uses CR 4").
const headerNibbles = 5

// Header is the decoded contents of the explicit PHY header.
type Header struct {
	PayloadLen int  // payload bytes, excluding the 16-bit CRC
	CR         int  // coding rate of the payload blocks
	HasCRC     bool // payload CRC present (always true in this system)
}

// headerChecksum computes the 5-bit checksum over the 12 header content
// bits (8 length bits, 3 CR bits, 1 CRC flag). Each checksum bit is the
// parity of a fixed bit mask, mirroring the structure of the Semtech
// header check.
func headerChecksum(lenByte uint8, cr int, hasCRC bool) uint8 {
	bits := uint16(lenByte)<<4 | uint16(cr&7)<<1 | b2u16(hasCRC)
	masks := [5]uint16{
		0b111100000000, // c4
		0b000011110000, // c3
		0b100010001000, // c2
		0b010001000100, // c1
		0b001000100011, // c0
	}
	var chk uint8
	for i, m := range masks {
		chk |= parity16(bits&m) << uint(4-i)
	}
	return chk
}

func b2u16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

func parity16(x uint16) uint8 {
	var p uint8
	for x != 0 {
		x &= x - 1
		p ^= 1
	}
	return p
}

// EncodeHeader returns the 5 header nibbles for the given header fields.
func EncodeHeader(h Header) ([]uint8, error) {
	if h.PayloadLen < 0 || h.PayloadLen > 255 {
		return nil, fmt.Errorf("lora: payload length %d out of range", h.PayloadLen)
	}
	if h.CR < 1 || h.CR > 4 {
		return nil, fmt.Errorf("lora: header CR %d out of range", h.CR)
	}
	lenByte := uint8(h.PayloadLen)
	chk := headerChecksum(lenByte, h.CR, h.HasCRC)
	flags := uint8(h.CR)<<1 | uint8(b2u16(h.HasCRC))
	return []uint8{
		lenByte >> 4,
		lenByte & 0x0F,
		flags,
		chk >> 4,   // c4 in bit 0 of the nibble
		chk & 0x0F, // c3..c0
	}, nil
}

// DecodeHeader parses and validates 5 header nibbles. It returns the header
// and true when the checksum matches.
func DecodeHeader(nibbles []uint8) (Header, bool) {
	if len(nibbles) < headerNibbles {
		return Header{}, false
	}
	lenByte := nibbles[0]<<4 | nibbles[1]&0x0F
	flags := nibbles[2]
	cr := int(flags >> 1 & 7)
	hasCRC := flags&1 != 0
	gotChk := (nibbles[3]&0x01)<<4 | nibbles[4]&0x0F
	h := Header{PayloadLen: int(lenByte), CR: cr, HasCRC: hasCRC}
	if cr < 1 || cr > 4 {
		return h, false
	}
	return h, headerChecksum(lenByte, cr, hasCRC) == gotChk
}
