package lora

// ScanKernel is the detection scan's batched signal-vector kernel. The scan
// evaluates consecutive one-symbol windows at integer sample starts with
// zero CFO — the one case where the dechirp is a strided conjugate multiply
// with no interpolation and no rotation — so the kernel fuses that multiply
// into the FFT's bit-reversal store: each window's dechirped symbol is
// materialized directly in the order the butterfly stages want
// (scatter-stored through the reversal permutation while the raw window is
// read sequentially), and the whole batch runs through one
// ForwardMagBatchRev. Per window this removes the separate dechirp pass and
// the bit-reversal swap pass of the SignalVectorInto path, while computing
// the exact same IEEE arithmetic — each output row is bit-identical to
// SignalVectorInto at the same start. (A split re/im variant of this kernel
// measured slower than the complex row layout — the scatter store doubles
// and the butterflies gain nothing without SIMD — so the batch rows stay
// []complex128; the flat-plane transforms remain available in dsp behind
// the same parity contract.)
//
// A ScanKernel owns growable scratch and is not safe for concurrent use;
// each scan worker holds its own.
type ScanKernel struct {
	d     *Demodulator
	refRe []float64    // real(Up): upchirp reference, split planes
	refIm []float64    // imag(Up)
	cbuf  []complex128 // batch rows, grown to rows·N
}

// NewScanKernel builds a scan kernel sharing the demodulator's FFT plan and
// reference chirps.
func (d *Demodulator) NewScanKernel() *ScanKernel {
	n := d.p.N()
	k := &ScanKernel{d: d, refRe: make([]float64, n), refIm: make([]float64, n)}
	for i, r := range d.ref.Up {
		k.refRe[i], k.refIm[i] = real(r), imag(r)
	}
	return k
}

// UpVectorsInto fills y (length rows·N) with the signal vectors of rows
// consecutive scan windows: row r receives
// |FFT(symbol(start0 + r·hop) ⊙ C')|², bit-identical to
// SignalVectorInto(yRow, buf, rx, float64(start0+r·hop), 0, 0). Windows may
// run off the end of rx; out-of-range samples read as 0, matching the
// fused dechirp's contract.
func (k *ScanKernel) UpVectorsInto(y []float64, rx []complex128, start0, hop, rows int) {
	d := k.d
	n := d.p.N()
	if len(y) != rows*n {
		panic("lora: ScanKernel.UpVectorsInto length mismatch")
	}
	if rows <= 0 {
		return
	}
	if cap(k.cbuf) < rows*n {
		k.cbuf = make([]complex128, rows*n)
	}
	x := k.cbuf[:rows*n]
	rev := d.plan.Rev()
	osf := d.p.OSF
	m := len(rx)
	for r := 0; r < rows; r++ {
		s0 := start0 + r*hop
		row := x[r*n : (r+1)*n : (r+1)*n]
		// Sequential strided read of the raw window (prefetch-friendly —
		// rev-order loads over the osf-wide window thrash the cache),
		// scatter-stored into the compact L1-resident row at the
		// bit-reversed slot. rev is an involution, so the scatter produces
		// exactly the swap pass's layout.
		if last := s0 + (n-1)*osf; s0 >= 0 && last < m {
			// Fully in-range window: walk a subslice with the load index as
			// the loop condition, so the per-sample range check vanishes.
			win := rx[s0 : last+1]
			i := 0
			for pos := 0; pos < len(win); pos += osf {
				v := win[pos]
				vr, vi := real(v), imag(v)
				rr, ri := k.refRe[i], k.refIm[i]
				row[rev[i]] = complex(vr*rr+vi*ri, vi*rr-vr*ri)
				i++
			}
			continue
		}
		pos := s0
		for i := 0; i < n; i++ {
			j := rev[i]
			if uint(pos) >= uint(m) {
				row[j] = 0
				pos += osf
				continue
			}
			v := rx[pos]
			pos += osf
			vr, vi := real(v), imag(v)
			rr, ri := k.refRe[i], k.refIm[i]
			row[j] = complex(vr*rr+vi*ri, vi*rr-vr*ri)
		}
	}
	d.plan.ForwardMagBatchRev(y, x, rows)
}
