package lora

import (
	"bytes"
	"math/rand"
	"testing"
)

// Tests for the LDRO and implicit-header extensions.

func TestLDRORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for _, sf := range []int{9, 11, 12} {
		for cr := 1; cr <= 4; cr++ {
			p := MustParams(sf, cr, 125e3, 8)
			p.LDRO = true
			for _, ln := range []int{0, 5, 16, 40} {
				payload := make([]uint8, ln)
				rng.Read(payload)
				shifts, lay, err := Encode(p, payload)
				if err != nil {
					t.Fatalf("SF%d CR%d len%d: %v", sf, cr, ln, err)
				}
				if len(shifts) != lay.DataSymbols {
					t.Fatalf("SF%d CR%d: %d shifts vs layout %d", sf, cr, len(shifts), lay.DataSymbols)
				}
				// All LDRO symbols land on the reduced-rate grid.
				for i, s := range shifts {
					if s%4 != 0 {
						t.Fatalf("SF%d CR%d: symbol %d shift %d not on the x4 grid", sf, cr, i, s)
					}
				}
				res := DecodeDefault(p, shifts)
				if !res.OK || !bytes.Equal(res.Payload, payload) {
					t.Fatalf("SF%d CR%d len%d: LDRO decode failed", sf, cr, ln)
				}
			}
		}
	}
}

func TestLDROAbsorbsLargerBinErrors(t *testing.T) {
	// The point of LDRO: a ±1 bin error (clock drift on long symbols) is
	// absorbed by the grid rounding before Gray decoding.
	p := MustParams(11, 4, 125e3, 8)
	p.LDRO = true
	payload := []uint8("drift-proof!!")
	shifts, _, err := Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 40; trial++ {
		c := append([]int(nil), shifts...)
		// ±1 bin error on every symbol.
		for i := range c {
			c[i] = (c[i] + 1 - 2*rng.Intn(2) + p.N()) % p.N()
		}
		res := DecodeDefault(p, c)
		if !res.OK || !bytes.Equal(res.Payload, payload) {
			t.Fatalf("trial %d: LDRO did not absorb ±1 bin errors", trial)
		}
	}
}

func TestLDROUsesMoreSymbols(t *testing.T) {
	p := MustParams(10, 4, 125e3, 8)
	plain := p.PayloadSymbols(20)
	p.LDRO = true
	if ldro := p.PayloadSymbols(20); ldro <= plain {
		t.Errorf("LDRO symbols %d should exceed plain %d", ldro, plain)
	}
}

func TestImplicitHeaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	for _, sf := range []int{7, 8, 10} {
		for cr := 1; cr <= 4; cr++ {
			p := MustParams(sf, cr, 125e3, 8)
			for _, ln := range []int{0, 3, 16, 33} {
				payload := make([]uint8, ln)
				rng.Read(payload)
				shifts, lay, err := EncodeImplicit(p, payload)
				if err != nil {
					t.Fatal(err)
				}
				if len(shifts) != lay.DataSymbols {
					t.Fatalf("shift count %d vs layout %d", len(shifts), lay.DataSymbols)
				}
				res := DecodeImplicitDefault(p, shifts, ln)
				if !res.OK || !bytes.Equal(res.Payload, payload) {
					t.Fatalf("SF%d CR%d len%d: implicit decode failed", sf, cr, ln)
				}
			}
		}
	}
}

func TestImplicitShorterThanExplicit(t *testing.T) {
	// Implicit mode saves the 5 header nibbles, so it never uses more
	// symbols than explicit mode.
	for _, sf := range []int{7, 8, 10, 12} {
		for cr := 1; cr <= 4; cr++ {
			p := MustParams(sf, cr, 125e3, 8)
			for _, ln := range []int{0, 16, 64} {
				el, err := NewLayout(p, ln)
				if err != nil {
					t.Fatal(err)
				}
				il, err := ImplicitLayout(p, ln)
				if err != nil {
					t.Fatal(err)
				}
				if il.DataSymbols > el.DataSymbols {
					t.Errorf("SF%d CR%d len%d: implicit %d > explicit %d symbols",
						sf, cr, ln, il.DataSymbols, el.DataSymbols)
				}
			}
		}
	}
}

func TestImplicitWorksAtSF6Geometry(t *testing.T) {
	// SF 6 has no explicit header mode; the implicit path must work with
	// its 4-row first block.
	p := MustParams(6, 4, 125e3, 8)
	payload := []uint8{0xAB, 0xCD}
	shifts, _, err := EncodeImplicit(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	res := DecodeImplicitDefault(p, shifts, len(payload))
	if !res.OK || !bytes.Equal(res.Payload, payload) {
		t.Fatal("SF6 implicit round trip failed")
	}
}

func TestImplicitRejectsBadLength(t *testing.T) {
	p := MustParams(8, 4, 125e3, 8)
	if _, _, err := EncodeImplicit(p, make([]uint8, 300)); err == nil {
		t.Error("expected error for oversized payload")
	}
	res := DecodeImplicitDefault(p, []int{1, 2, 3}, 300)
	if res.OK {
		t.Error("oversized length should fail")
	}
}

func TestImplicitWrongLengthFailsCRC(t *testing.T) {
	p := MustParams(8, 3, 125e3, 8)
	payload := []uint8("right length")
	shifts, _, err := EncodeImplicit(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	if res := DecodeImplicitDefault(p, shifts, len(payload)+1); res.OK {
		t.Error("wrong advertised length must fail the CRC")
	}
}
