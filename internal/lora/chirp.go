package lora

import (
	"math"

	"tnb/internal/dsp"
)

// RefChirps holds the native-rate (one sample per chip) reference chirps
// used for dechirping at the receiver. Build once per Params with
// NewRefChirps; safe for concurrent use.
type RefChirps struct {
	N    int
	Up   []complex128 // base upchirp C
	Down []complex128 // downchirp C' = conj(C)
}

// NewRefChirps precomputes the native-rate base chirps for n = 2^SF chips.
func NewRefChirps(sf int) *RefChirps {
	n := 1 << sf
	r := &RefChirps{N: n, Up: make([]complex128, n), Down: make([]complex128, n)}
	for i := 0; i < n; i++ {
		// Native-rate sampled base upchirp: phase π(i²/N − i). Frequency
		// wrap is implicit through aliasing at the chip rate.
		ph := math.Pi * (float64(i)*float64(i)/float64(n) - float64(i))
		r.Up[i] = dsp.Cis(ph)
		r.Down[i] = complex(real(r.Up[i]), -imag(r.Up[i]))
	}
	return r
}

// chirpPhase returns the continuous-time phase (radians) of an upchirp with
// cyclic shift h at time t seconds into the symbol, for chip count n and
// bandwidth bw. The instantaneous frequency starts at -bw/2 + h·bw/n, rises
// at bw/T, and folds down by bw at t_fold = (n-h)/bw with continuous phase.
func chirpPhase(t float64, h int, n int, bw float64) float64 {
	T := float64(n) / bw
	f0 := -bw/2 + float64(h)*bw/float64(n)
	ph := 2 * math.Pi * (f0*t + bw/(2*T)*t*t)
	tFold := float64(n-h) / bw
	if t >= tFold {
		ph -= 2 * math.Pi * bw * (t - tFold)
	}
	return ph
}

// SymbolAt evaluates the transmitted upchirp symbol with shift h at time t
// seconds into the symbol (0 ≤ t < T). Used by the waveform synthesizer,
// which samples packets on the receiver grid at arbitrary fractional
// offsets.
func SymbolAt(t float64, h int, n int, bw float64) complex128 {
	return dsp.Cis(chirpPhase(t, h, n, bw))
}

// DownchirpAt evaluates the base downchirp at time t seconds into the
// symbol: the conjugate of the base upchirp.
func DownchirpAt(t float64, n int, bw float64) complex128 {
	v := dsp.Cis(chirpPhase(t, 0, n, bw))
	return complex(real(v), -imag(v))
}

// ModulateSymbol synthesizes one oversampled upchirp symbol with shift h
// into dst, which must have length n·osf. The symbol is sampled at
// t = i/(bw·osf).
func ModulateSymbol(dst []complex128, h, n int, bw float64, osf int) {
	fs := bw * float64(osf)
	for i := range dst {
		dst[i] = SymbolAt(float64(i)/fs, h, n, bw)
	}
}
