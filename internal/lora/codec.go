package lora

import "fmt"

// Frame codec: payload bytes ↔ chirp shifts.
//
// Encode pipeline (§3 of the paper, mirroring the LoRa specification):
//
//	payload → +CRC16 → whitening → nibbles (low first) →
//	header block (SF-2 rows, CR 4, reduced-rate symbols) +
//	payload blocks (SF rows, 4+CR columns) →
//	Hamming(8,4) per row → diagonal interleave → Gray⁻¹ → chirp shifts
//
// The decode path inverts each step; DecodeDefault applies the default
// per-row Hamming decoder, while the bec package consumes the received
// blocks produced by SymbolsToBlocks for joint decoding.

// Layout describes how a payload of a given length maps onto blocks and
// symbols for a parameter set.
type Layout struct {
	Params        Params
	PayloadLen    int // payload bytes excluding CRC
	TotalNibbles  int // payload+CRC nibbles on air
	HeaderRows    int // rows in the reduced-rate first block (SF-2)
	PayloadBlocks int // number of full-rate blocks after the header block
	DataSymbols   int // total data symbols: 8 + PayloadBlocks·(4+CR)
}

// NewLayout computes the frame layout. SF must be at least 7 so the explicit
// header fits in the reduced-rate block.
func NewLayout(p Params, payloadLen int) (Layout, error) {
	if err := p.Validate(); err != nil {
		return Layout{}, err
	}
	if p.SF < 7 {
		return Layout{}, fmt.Errorf("lora: explicit header requires SF >= 7, got %d", p.SF)
	}
	if payloadLen < 0 || payloadLen > 255 {
		return Layout{}, fmt.Errorf("lora: payload length %d out of range [0, 255]", payloadLen)
	}
	nib := totalNibbles(payloadLen)
	inHeader := p.headerRows() - headerNibbles
	rest := nib - inHeader
	if rest < 0 {
		rest = 0
	}
	rows := p.payloadRows()
	blocks := (rest + rows - 1) / rows
	return Layout{
		Params:        p,
		PayloadLen:    payloadLen,
		TotalNibbles:  nib,
		HeaderRows:    p.headerRows(),
		PayloadBlocks: blocks,
		DataSymbols:   HeaderSymbols + blocks*p.codewordLen(),
	}, nil
}

// airNibbles builds the whitened payload+CRC nibble stream (low nibble of
// each byte first).
func airNibbles(payload []uint8) []uint8 {
	data := AppendCRC(payload)
	Whiten(data)
	nib := make([]uint8, 0, 2*len(data))
	for _, b := range data {
		nib = append(nib, b&0x0F, b>>4)
	}
	return nib
}

// bytesFromNibbles inverts airNibbles: pairs nibbles into bytes, dewhitens,
// and verifies/strips the CRC.
func bytesFromNibbles(nib []uint8, payloadLen int) ([]uint8, bool) {
	need := 2 * (payloadLen + crcBytes)
	if len(nib) < need {
		return nil, false
	}
	data := make([]uint8, payloadLen+crcBytes)
	for i := range data {
		data[i] = nib[2*i]&0x0F | nib[2*i+1]<<4
	}
	Whiten(data)
	return CheckCRC(data)
}

// Encode maps a payload to the sequence of data-symbol chirp shifts
// (preamble not included). The header advertises the payload length and CR.
func Encode(p Params, payload []uint8) ([]int, Layout, error) {
	lay, err := NewLayout(p, len(payload))
	if err != nil {
		return nil, Layout{}, err
	}
	hdrNib, err := EncodeHeader(Header{PayloadLen: len(payload), CR: p.CR, HasCRC: true})
	if err != nil {
		return nil, Layout{}, err
	}
	nib := airNibbles(payload)

	// Row stream: header nibbles, then payload nibbles, zero padding.
	take := func(i int) uint8 {
		if i < len(hdrNib) {
			return hdrNib[i]
		}
		i -= len(hdrNib)
		if i < len(nib) {
			return nib[i]
		}
		return 0
	}

	shifts := make([]int, 0, lay.DataSymbols)
	pos := 0

	// Header block: SF-2 rows, always CR 4, reduced-rate symbols.
	hb := NewBlock(lay.HeaderRows, 8)
	for r := 0; r < hb.Rows; r++ {
		hb.SetRowCodeword(r, HammingEncode(take(pos), 4))
		pos++
	}
	for _, bits := range hb.Interleave() {
		shifts = append(shifts, int(GrayInverse(bits))<<2)
	}

	// Payload blocks: SF rows and full-rate symbols normally; SF-2 rows
	// and reduced-rate symbols with LDRO.
	rows := p.payloadRows()
	for b := 0; b < lay.PayloadBlocks; b++ {
		blk := NewBlock(rows, p.codewordLen())
		for r := 0; r < rows; r++ {
			blk.SetRowCodeword(r, HammingEncode(take(pos), p.CR))
			pos++
		}
		for _, bits := range blk.Interleave() {
			if p.LDRO {
				shifts = append(shifts, int(GrayInverse(bits))<<2)
			} else {
				shifts = append(shifts, int(GrayInverse(bits)))
			}
		}
	}
	return shifts, lay, nil
}

// HeaderBlockFromShifts deinterleaves the first 8 data symbols into the
// received header block (SF-2 rows × 8 columns). Reduced-rate symbols are
// rounded to the nearest multiple of 4 before Gray decoding, absorbing ±1
// bin demodulation errors.
func HeaderBlockFromShifts(p Params, shifts []int) *Block {
	rows := p.headerRows()
	b := NewBlock(rows, 8)
	syms := make([]uint32, 0, HeaderSymbols)
	mod := uint32(1) << uint(rows)
	for i := 0; i < HeaderSymbols && i < len(shifts); i++ {
		v := (uint32(shifts[i]) + 2) >> 2 % mod // round to reduced-rate grid
		syms = append(syms, Gray(v))
	}
	b.DeinterleaveInto(syms)
	return b
}

// PayloadBlocksFromShifts deinterleaves the post-header data symbols into
// received payload blocks. With LDRO, symbols are rounded to the
// reduced-rate grid first (as for the header block).
func PayloadBlocksFromShifts(p Params, shifts []int, nblocks int) []*Block {
	out := make([]*Block, 0, nblocks)
	cw := p.codewordLen()
	rows := p.payloadRows()
	for b := 0; b < nblocks; b++ {
		blk := NewBlock(rows, cw)
		syms := make([]uint32, 0, cw)
		for j := 0; j < cw; j++ {
			idx := HeaderSymbols + b*cw + j
			var v uint32
			if idx < len(shifts) {
				if p.LDRO {
					v = (uint32(shifts[idx]) + 2) >> 2 % (uint32(1) << uint(rows))
				} else {
					v = uint32(shifts[idx]) % uint32(p.N())
				}
			}
			syms = append(syms, Gray(v))
		}
		blk.DeinterleaveInto(syms)
		out = append(out, blk)
	}
	return out
}

// NibblesFromBlocks extracts the data nibbles from the (cleaned) header and
// payload blocks: the data half of each codeword row, skipping the header
// nibbles.
func NibblesFromBlocks(headerBlock *Block, payloadBlocks []*Block) []uint8 {
	var nib []uint8
	for r := headerNibbles; r < headerBlock.Rows; r++ {
		nib = append(nib, headerBlock.RowCodeword(r)>>4)
	}
	for _, blk := range payloadBlocks {
		for r := 0; r < blk.Rows; r++ {
			nib = append(nib, blk.RowCodeword(r)>>4)
		}
	}
	return nib
}

// cleanBlock applies the default Hamming decoder row by row, returning the
// cleaned block (every row snapped to the nearest codeword, paper Fig. 2).
func cleanBlock(b *Block, cr int) *Block {
	out := NewBlock(b.Rows, b.Cols)
	for r := 0; r < b.Rows; r++ {
		data, _, _ := HammingDecodeDefault(b.RowCodeword(r), cr)
		out.SetRowCodeword(r, HammingEncode(data, cr))
	}
	return out
}

// CleanBlock is the exported form of the default per-row decoder, used by
// BEC to compute the cleaned block Γ.
func CleanBlock(b *Block, cr int) *Block { return cleanBlock(b, cr) }

// DecodeResult reports a frame decode.
type DecodeResult struct {
	Header  Header
	Payload []uint8
	OK      bool // header checksum and payload CRC both passed
}

// DecodeDefault decodes data-symbol shifts with the default (per-codeword)
// Hamming decoder: the baseline LoRaPHY behaviour.
func DecodeDefault(p Params, shifts []int) DecodeResult {
	hb := HeaderBlockFromShifts(p, shifts)
	hClean := cleanBlock(hb, 4)
	var hdrNib []uint8
	for r := 0; r < headerNibbles && r < hClean.Rows; r++ {
		hdrNib = append(hdrNib, hClean.RowCodeword(r)>>4)
	}
	hdr, ok := DecodeHeader(hdrNib)
	if !ok {
		return DecodeResult{Header: hdr}
	}
	pp := p
	pp.CR = hdr.CR
	lay, err := NewLayout(pp, hdr.PayloadLen)
	if err != nil {
		return DecodeResult{Header: hdr}
	}
	blocks := PayloadBlocksFromShifts(pp, shifts, lay.PayloadBlocks)
	cleaned := make([]*Block, len(blocks))
	for i, b := range blocks {
		cleaned[i] = cleanBlock(b, pp.CR)
	}
	nib := NibblesFromBlocks(hClean, cleaned)
	payload, ok := bytesFromNibbles(nib, hdr.PayloadLen)
	return DecodeResult{Header: hdr, Payload: payload, OK: ok}
}

// HeaderFromCleanBlock extracts and validates the PHY header from a cleaned
// header block. It returns the header and whether its checksum passed.
func HeaderFromCleanBlock(b *Block) (Header, bool) {
	var nib []uint8
	for r := 0; r < headerNibbles && r < b.Rows; r++ {
		nib = append(nib, b.RowCodeword(r)>>4)
	}
	return DecodeHeader(nib)
}

// AssemblePayload extracts the payload from cleaned header and payload
// blocks, dewhitens it and verifies the packet CRC. It is the packet-level
// check BEC uses to select among candidate repaired blocks (paper §6.9).
func AssemblePayload(headerBlock *Block, payloadBlocks []*Block, payloadLen int) ([]uint8, bool) {
	nib := NibblesFromBlocks(headerBlock, payloadBlocks)
	return bytesFromNibbles(nib, payloadLen)
}

// Implicit-header mode. LoRa can omit the explicit PHY header when both
// sides agree on the payload length and coding rate out of band (SF 6
// requires it). The reduced-rate first block is kept — its robustness
// protects the start of the payload — but all of its rows carry payload
// nibbles.

// ImplicitLayout computes the frame layout for implicit-header mode.
func ImplicitLayout(p Params, payloadLen int) (Layout, error) {
	if err := p.Validate(); err != nil {
		return Layout{}, err
	}
	if payloadLen < 0 || payloadLen > 255 {
		return Layout{}, fmt.Errorf("lora: payload length %d out of range [0, 255]", payloadLen)
	}
	nib := totalNibbles(payloadLen)
	rest := nib - p.headerRows()
	if rest < 0 {
		rest = 0
	}
	rows := p.payloadRows()
	blocks := (rest + rows - 1) / rows
	return Layout{
		Params:        p,
		PayloadLen:    payloadLen,
		TotalNibbles:  nib,
		HeaderRows:    p.headerRows(),
		PayloadBlocks: blocks,
		DataSymbols:   HeaderSymbols + blocks*p.codewordLen(),
	}, nil
}

// EncodeImplicit maps a payload to chirp shifts without a PHY header.
func EncodeImplicit(p Params, payload []uint8) ([]int, Layout, error) {
	lay, err := ImplicitLayout(p, len(payload))
	if err != nil {
		return nil, Layout{}, err
	}
	nib := airNibbles(payload)
	take := func(i int) uint8 {
		if i < len(nib) {
			return nib[i]
		}
		return 0
	}

	shifts := make([]int, 0, lay.DataSymbols)
	pos := 0
	fb := NewBlock(lay.HeaderRows, 8) // reduced-rate first block, CR 4
	for r := 0; r < fb.Rows; r++ {
		fb.SetRowCodeword(r, HammingEncode(take(pos), 4))
		pos++
	}
	for _, bits := range fb.Interleave() {
		shifts = append(shifts, int(GrayInverse(bits))<<2)
	}
	rows := p.payloadRows()
	for b := 0; b < lay.PayloadBlocks; b++ {
		blk := NewBlock(rows, p.codewordLen())
		for r := 0; r < rows; r++ {
			blk.SetRowCodeword(r, HammingEncode(take(pos), p.CR))
			pos++
		}
		for _, bits := range blk.Interleave() {
			if p.LDRO {
				shifts = append(shifts, int(GrayInverse(bits))<<2)
			} else {
				shifts = append(shifts, int(GrayInverse(bits)))
			}
		}
	}
	return shifts, lay, nil
}

// DecodeImplicitDefault decodes an implicit-header frame of a known payload
// length with the default per-codeword decoder.
func DecodeImplicitDefault(p Params, shifts []int, payloadLen int) DecodeResult {
	lay, err := ImplicitLayout(p, payloadLen)
	if err != nil {
		return DecodeResult{}
	}
	fb := HeaderBlockFromShifts(p, shifts) // same reduced-rate geometry
	fClean := cleanBlock(fb, 4)
	blocks := PayloadBlocksFromShifts(p, shifts, lay.PayloadBlocks)
	cleaned := make([]*Block, len(blocks))
	for i, b := range blocks {
		cleaned[i] = cleanBlock(b, p.CR)
	}
	var nib []uint8
	for r := 0; r < fClean.Rows; r++ {
		nib = append(nib, fClean.RowCodeword(r)>>4)
	}
	for _, blk := range cleaned {
		for r := 0; r < blk.Rows; r++ {
			nib = append(nib, blk.RowCodeword(r)>>4)
		}
	}
	payload, ok := bytesFromNibbles(nib, payloadLen)
	return DecodeResult{Header: Header{PayloadLen: payloadLen, CR: p.CR, HasCRC: true}, Payload: payload, OK: ok}
}
