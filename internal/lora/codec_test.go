package lora

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGrayRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v &= 0xFFF
		return GrayInverse(Gray(v)) == v && Gray(GrayInverse(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Adjacent values differ in exactly one bit after Gray coding — the
	// property that makes ±1 demodulation errors single-bit errors.
	for v := uint32(0); v < 4096; v++ {
		d := Gray(v) ^ Gray(v+1)
		if d == 0 || d&(d-1) != 0 {
			t.Fatalf("Gray(%d) and Gray(%d) differ in more than one bit", v, v+1)
		}
	}
}

func TestWhitenSelfInverse(t *testing.T) {
	f := func(data []byte) bool {
		orig := append([]byte(nil), data...)
		Whiten(data)
		Whiten(data)
		return bytes.Equal(orig, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWhitenSequenceNontrivial(t *testing.T) {
	seq := WhitenSequence(256)
	// The LFSR must not get stuck and must produce a rich sequence.
	seen := map[uint8]bool{}
	for _, b := range seq {
		seen[b] = true
	}
	if len(seen) < 100 {
		t.Errorf("whitening sequence has only %d distinct bytes in 256", len(seen))
	}
	if seq[0] != 0xFF {
		t.Errorf("sequence must start at the seed, got %#x", seq[0])
	}
}

func TestWhitenChangesData(t *testing.T) {
	data := make([]byte, 32) // all zeros
	Whiten(data)
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("whitening left an all-zero payload unchanged")
	}
}

func TestCRCRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		got, ok := CheckCRC(AppendCRC(payload))
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	payload := []byte("hello lora world")
	data := AppendCRC(payload)
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x40
		if _, ok := CheckCRC(corrupted); ok {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
	if _, ok := CheckCRC([]byte{0x01}); ok {
		t.Error("short input should fail")
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check value = %#04x, want 0x29b1", got)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{5, 6, 8, 10, 12} {
		for _, cols := range []int{5, 6, 7, 8} {
			b := NewBlock(rows, cols)
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					b.Bits[r][c] = uint8(rng.Intn(2))
				}
			}
			syms := b.Interleave()
			got := NewBlock(rows, cols)
			got.DeinterleaveInto(syms)
			if !got.Equal(b) {
				t.Errorf("rows=%d cols=%d: interleave round-trip failed", rows, cols)
			}
		}
	}
}

func TestInterleaveSymbolCorruptionHitsOneColumn(t *testing.T) {
	// The property BEC depends on: corrupting one transmitted symbol
	// corrupts exactly one column of the deinterleaved block.
	rng := rand.New(rand.NewSource(8))
	rows, cols := 8, 7
	b := NewBlock(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.Bits[r][c] = uint8(rng.Intn(2))
		}
	}
	syms := b.Interleave()
	for j := range syms {
		corrupted := append([]uint32(nil), syms...)
		corrupted[j] ^= uint32(1 + rng.Intn(1<<rows-1))
		got := NewBlock(rows, cols)
		got.DeinterleaveInto(corrupted)
		diffCols := map[int]bool{}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if got.Bits[r][c] != b.Bits[r][c] {
					diffCols[c] = true
				}
			}
		}
		if len(diffCols) != 1 || !diffCols[j] {
			t.Errorf("symbol %d corruption affected columns %v", j, diffCols)
		}
	}
}

func TestBlockRowCodewordRoundTrip(t *testing.T) {
	b := NewBlock(4, 8)
	for _, cw := range []uint8{0x00, 0xFF, 0b10011100, 0b01010101} {
		b.SetRowCodeword(2, cw)
		if got := b.RowCodeword(2); got != cw {
			t.Errorf("row codeword %08b round-tripped to %08b", cw, got)
		}
	}
	// Partial columns: only the first Cols bits survive.
	p := NewBlock(4, 5)
	p.SetRowCodeword(0, 0b11111111)
	if got := p.RowCodeword(0); got != 0b11111000 {
		t.Errorf("5-column row = %08b", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, ln := range []int{0, 1, 16, 100, 255} {
		for cr := 1; cr <= 4; cr++ {
			nib, err := EncodeHeader(Header{PayloadLen: ln, CR: cr, HasCRC: true})
			if err != nil {
				t.Fatalf("EncodeHeader: %v", err)
			}
			got, ok := DecodeHeader(nib)
			if !ok || got.PayloadLen != ln || got.CR != cr || !got.HasCRC {
				t.Errorf("len=%d cr=%d: got %+v ok=%v", ln, cr, got, ok)
			}
		}
	}
}

func TestHeaderChecksumDetectsCorruption(t *testing.T) {
	nib, _ := EncodeHeader(Header{PayloadLen: 16, CR: 3, HasCRC: true})
	misses := 0
	for i := 0; i < 3; i++ { // corrupt the content nibbles
		for bit := 0; bit < 4; bit++ {
			c := append([]uint8(nil), nib...)
			c[i] ^= 1 << uint(bit)
			if h, ok := DecodeHeader(c); ok {
				// A corrupted header may still parse if CR became invalid
				// is filtered; count undetected corruptions.
				_ = h
				misses++
			}
		}
	}
	if misses > 0 {
		t.Errorf("%d single-bit header corruptions undetected", misses)
	}
}

func TestEncodeHeaderRejectsBadInput(t *testing.T) {
	if _, err := EncodeHeader(Header{PayloadLen: 300, CR: 3}); err == nil {
		t.Error("expected error for oversized payload")
	}
	if _, err := EncodeHeader(Header{PayloadLen: 10, CR: 0}); err == nil {
		t.Error("expected error for CR 0")
	}
	if _, ok := DecodeHeader([]uint8{1, 2}); ok {
		t.Error("short nibble slice should fail")
	}
}

func TestEncodeDecodeRoundTripAllParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sf := range []int{7, 8, 9, 10, 11, 12} {
		for cr := 1; cr <= 4; cr++ {
			for _, ln := range []int{0, 1, 5, 16, 49} {
				p := MustParams(sf, cr, 125e3, 8)
				payload := make([]uint8, ln)
				rng.Read(payload)
				shifts, lay, err := Encode(p, payload)
				if err != nil {
					t.Fatalf("SF%d CR%d len%d: %v", sf, cr, ln, err)
				}
				if len(shifts) != lay.DataSymbols {
					t.Fatalf("SF%d CR%d len%d: %d shifts, layout says %d",
						sf, cr, ln, len(shifts), lay.DataSymbols)
				}
				res := DecodeDefault(p, shifts)
				if !res.OK {
					t.Fatalf("SF%d CR%d len%d: decode failed", sf, cr, ln)
				}
				if !bytes.Equal(res.Payload, payload) {
					t.Fatalf("SF%d CR%d len%d: payload mismatch", sf, cr, ln)
				}
				if res.Header.CR != cr || res.Header.PayloadLen != ln {
					t.Fatalf("SF%d CR%d len%d: header %+v", sf, cr, ln, res.Header)
				}
			}
		}
	}
}

func TestEncodeRejectsSF6(t *testing.T) {
	p := MustParams(6, 4, 125e3, 8)
	if _, _, err := Encode(p, []uint8{1, 2, 3}); err == nil {
		t.Error("expected error for SF 6 explicit header")
	}
}

func TestDecodeSurvivesSingleBitErrorsCR3(t *testing.T) {
	// One flipped bit per payload-block symbol stays within the default
	// decoder's power for CR >= 3.
	p := MustParams(8, 3, 125e3, 8)
	payload := []uint8("abcdefghij123456")
	shifts, lay, err := Encode(p, payload)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		c := append([]int(nil), shifts...)
		// A ±1 bin error on a payload symbol flips one Gray bit.
		idx := HeaderSymbols + rng.Intn(lay.DataSymbols-HeaderSymbols)
		c[idx] = (c[idx] + 1) % p.N()
		res := DecodeDefault(p, c)
		if !res.OK || !bytes.Equal(res.Payload, payload) {
			t.Fatalf("trial %d: ±1 bin error at symbol %d not corrected", trial, idx)
		}
	}
}

func TestLayoutSymbolCountsMatchParams(t *testing.T) {
	for _, sf := range []int{7, 8, 10, 12} {
		for cr := 1; cr <= 4; cr++ {
			p := MustParams(sf, cr, 125e3, 8)
			for _, ln := range []int{0, 16, 64} {
				lay, err := NewLayout(p, ln)
				if err != nil {
					t.Fatal(err)
				}
				if got := p.PayloadSymbols(ln); got != lay.DataSymbols {
					t.Errorf("SF%d CR%d len%d: PayloadSymbols=%d layout=%d",
						sf, cr, ln, got, lay.DataSymbols)
				}
			}
		}
	}
}

func TestPaperPacketSize(t *testing.T) {
	// Paper §6.1: "a packet with 16 bytes has only 3 to 5 blocks depending
	// on the SF and CR". 16 bytes of payload, including its CRC, should
	// land in that range (header block + payload blocks).
	for _, sf := range []int{8, 10} {
		for cr := 1; cr <= 4; cr++ {
			p := MustParams(sf, cr, 125e3, 8)
			lay, err := NewLayout(p, 14) // 14 data + 2 CRC = 16 bytes on air
			if err != nil {
				t.Fatal(err)
			}
			blocks := 1 + lay.PayloadBlocks
			if blocks < 3 || blocks > 6 {
				t.Errorf("SF%d CR%d: %d blocks for a 16-byte packet", sf, cr, blocks)
			}
		}
	}
}
