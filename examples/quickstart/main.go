// Quickstart: encode a LoRa packet, synthesize its waveform into a noisy
// trace at a fractional timing offset with a CFO, and decode it back with
// the TnB receiver.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tnb"
)

func main() {
	params := tnb.Params(8, 4) // SF 8, CR 4, 125 kHz, OSF 8

	// Build a half-second trace with one packet at 10 dB SNR, a
	// sub-sample timing offset and a 2.1 kHz carrier frequency offset.
	rng := rand.New(rand.NewSource(42))
	builder := tnb.NewTraceBuilder(params, 0.5, 1, rng)
	payload := []byte("hello, LoRa!")
	if err := builder.AddPacket(1, 0, payload, 20000.37, 10, 2100, nil); err != nil {
		log.Fatal(err)
	}
	trace, truth := builder.Build()
	fmt.Printf("transmitted %d packet(s); first starts at sample %.2f\n",
		len(truth), truth[0].StartSample)

	// Decode with the full TnB pipeline (detection → Thrive → BEC).
	rx := tnb.NewReceiver(tnb.ReceiverConfig{Params: params, UseBEC: true})
	decoded := rx.Decode(trace)
	for _, d := range decoded {
		fmt.Printf("decoded %q (len %d, CR %d) at sample %.2f, CFO %.3f cycles/symbol, SNR %.1f dB\n",
			d.Payload, d.Header.PayloadLen, d.Header.CR, d.Start, d.CFOCycles, d.SNRdB)
	}
	if len(decoded) == 0 {
		log.Fatal("no packets decoded")
	}
}
