// BEC rescue: reproduces the structure of the paper's Fig. 2 / Fig. 7
// walkthrough. A CR 3 code block is corrupted in two symbol columns so
// that one codeword has two errors — beyond the default Hamming decoder —
// and BEC recovers the block via the companion column.
package main

import (
	"fmt"
	"math/rand"

	"tnb"
	"tnb/internal/bec"
	"tnb/internal/lora"
)

func printBlock(label string, b *lora.Block) {
	fmt.Println(label)
	for r := 0; r < b.Rows; r++ {
		fmt.Print("  ")
		for c := 0; c < b.Cols; c++ {
			fmt.Print(b.Bits[r][c])
		}
		fmt.Println()
	}
}

func main() {
	const cr = 3
	rng := rand.New(rand.NewSource(99))

	// A block of SF=8 random codewords.
	truth := lora.NewBlock(8, 4+cr)
	for r := 0; r < truth.Rows; r++ {
		truth.SetRowCodeword(r, lora.HammingEncode(uint8(rng.Intn(16)), cr))
	}
	printBlock("transmitted block:", truth)

	// Corrupt columns 2 and 7 (two corrupted symbols), with row 7 hit in
	// both columns — the paper's Fig. 2 scenario.
	received := truth.Clone()
	for _, r := range []int{1, 3, 5} {
		received.Bits[r][1] ^= 1 // column 2
	}
	for _, r := range []int{2, 4, 7} {
		received.Bits[r][6] ^= 1 // column 7
	}
	received.Bits[6][1] ^= 1 // row 7: both columns
	received.Bits[6][6] ^= 1
	printBlock("received block (columns 2 and 7 corrupted):", received)

	cleaned := lora.CleanBlock(received, cr)
	printBlock("default decoder (cleaned block):", cleaned)
	if cleaned.Equal(truth) {
		fmt.Println("default decoder got lucky this time")
	} else {
		fmt.Println("default decoder FAILED: the 2-error row snapped to the wrong codeword")
	}

	res := tnb.DecodeBlockBEC(received, cr)
	fmt.Printf("\nBEC produced %d candidate block(s) (failed=%v, noError=%v)\n",
		len(res.Candidates), res.Failed, res.NoError)
	for i, cand := range res.Candidates {
		status := "wrong"
		if cand.Equal(truth) {
			status = "CORRECT — selected by the packet CRC in a full decode"
		}
		fmt.Printf("  candidate %d: %s\n", i+1, status)
	}
	_ = bec.DefaultW // see §6.9 for the CRC budget when assembling packets
}
