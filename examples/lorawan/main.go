// LoRaWAN: the full gateway story. Two nodes build encrypted, MIC-protected
// LoRaWAN data frames, transmit them as colliding LoRa packets, TnB
// resolves the collision at the PHY, and the MAC layer verifies and
// decrypts the application payloads.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"tnb"
	"tnb/internal/lorawan"
)

type node struct {
	addr    lorawan.DevAddr
	nwkSKey []byte
	appSKey []byte
}

func main() {
	params := tnb.Params(8, 4)
	sym := float64(params.SymbolSamples())

	nodes := []node{
		{addr: 0x26011001, nwkSKey: bytes.Repeat([]byte{0x11}, 16), appSKey: bytes.Repeat([]byte{0xA1}, 16)},
		{addr: 0x26011002, nwkSKey: bytes.Repeat([]byte{0x22}, 16), appSKey: bytes.Repeat([]byte{0xA2}, 16)},
	}
	messages := []string{"temp=21.5C", "door=open!"}

	// Each node marshals a LoRaWAN frame; the frame bytes become the LoRa
	// PHY payload.
	rng := rand.New(rand.NewSource(3))
	builder := tnb.NewTraceBuilder(params, 1.2, 1, rng)
	for i, n := range nodes {
		frame := &lorawan.DataFrame{
			MType:      lorawan.UnconfirmedDataUp,
			DevAddr:    n.addr,
			FCnt:       uint16(100 + i),
			HasPort:    true,
			FPort:      1,
			FRMPayload: []byte(messages[i]),
		}
		wire, err := frame.Marshal(n.nwkSKey, n.appSKey)
		if err != nil {
			log.Fatal(err)
		}
		start := 20000.4 + float64(i)*10.5*sym // overlapping transmissions
		if err := builder.AddPacket(i, i, wire, start, 12-3*float64(i), 2000-3500*float64(i), nil); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %s queued %d-byte frame (FCnt %d)\n", n.addr, len(wire), frame.FCnt)
	}
	trace, _ := builder.Build()

	// Gateway side: TnB resolves the collision, then the MAC layer takes
	// over.
	rx := tnb.NewReceiver(tnb.ReceiverConfig{Params: params, UseBEC: true})
	decoded := rx.Decode(trace)
	fmt.Printf("\nTnB decoded %d PHY payload(s)\n", len(decoded))
	for _, d := range decoded {
		verified := false
		for _, n := range nodes {
			frame, err := lorawan.ParseDataFrame(d.Payload, n.nwkSKey, n.appSKey)
			if err != nil {
				continue // wrong node's keys → MIC fails; try the next
			}
			fmt.Printf("  DevAddr %s FCnt %d port %d: %q (MIC ok, SNR %.1f dB)\n",
				frame.DevAddr, frame.FCnt, frame.FPort, frame.FRMPayload, d.SNRdB)
			verified = true
			break
		}
		if !verified {
			fmt.Printf("  unverified payload %x\n", d.Payload)
		}
	}
}
