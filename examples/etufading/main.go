// ETU fading: runs a small version of the paper's §8.5 simulation — nodes
// in the LTE Extended Typical Urban channel with 5 Hz Doppler — and
// compares TnB against CIC and the 2-antenna TnB variant.
package main

import (
	"fmt"
	"log"

	"tnb"
)

func main() {
	cfg := tnb.Experiment{
		Deployment:    tnb.Deployment{Name: "etu-demo", Nodes: 8, MinDB: 0, MaxDB: 20, Uniform: true},
		SF:            8,
		CR:            3,
		LoadPktPerSec: 6,
		DurationSec:   2.0,
		ETU:           true,
		Seed:          12,
	}

	fmt.Printf("ETU channel, SF %d CR %d, %d nodes, %.0f pkt/s for %.0fs\n\n",
		cfg.SF, cfg.CR, cfg.Deployment.Nodes, cfg.LoadPktPerSec, cfg.DurationSec)

	for _, s := range []tnb.Scheme{tnb.SchemeCIC, tnb.SchemeCICBEC, tnb.SchemeTnB, tnb.SchemeTnB2Ant} {
		res, err := tnb.RunExperiment(cfg, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s decoded %3d/%3d  PRR %.2f  throughput %.1f pkt/s\n",
			s, res.Decoded, res.Sent, res.PRR, res.Throughput)
	}
}
