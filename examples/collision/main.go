// Collision: three nodes with different powers and CFOs transmit
// overlapping packets; the example contrasts the standard LoRaPHY decoder,
// the CIC baseline and TnB on the same trace — the scenario of the paper's
// introduction.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"tnb"
)

func main() {
	params := tnb.Params(8, 4)
	sym := float64(params.SymbolSamples())

	rng := rand.New(rand.NewSource(7))
	builder := tnb.NewTraceBuilder(params, 1.5, 1, rng)
	payloads := [][]byte{
		[]byte("node A: 15 dB "),
		[]byte("node B: 9 dB  "),
		[]byte("node C: 5 dB  "),
	}
	specs := []struct{ start, snr, cfo float64 }{
		{20000.4, 15, 2100},
		{20000.4 + 9.3*sym, 9, -3300},
		{20000.4 + 19.6*sym, 5, 900},
	}
	for i, s := range specs {
		if err := builder.AddPacket(i, 0, payloads[i], s.start, s.snr, s.cfo, nil); err != nil {
			log.Fatal(err)
		}
	}
	trace, truth := builder.Build()
	fmt.Printf("%d packets transmitted, all overlapping in time\n\n", len(truth))

	score := func(name string, decoded [][]byte) {
		ok := 0
		for _, want := range payloads {
			for _, got := range decoded {
				if bytes.Equal(got, want) {
					ok++
					break
				}
			}
		}
		fmt.Printf("%-8s decoded %d/%d packets\n", name, ok, len(payloads))
	}

	phy := tnb.NewLoRaPHYReceiver(params)
	var phyOut [][]byte
	for _, d := range phy.Decode(trace) {
		phyOut = append(phyOut, d.Payload)
	}
	score("LoRaPHY", phyOut)

	cic := tnb.NewCICReceiver(params, false)
	var cicOut [][]byte
	for _, d := range cic.Decode(trace) {
		cicOut = append(cicOut, d.Payload)
	}
	score("CIC", cicOut)

	rx := tnb.NewReceiver(tnb.ReceiverConfig{Params: params, UseBEC: true})
	var tnbOut [][]byte
	for _, d := range rx.Decode(trace) {
		tnbOut = append(tnbOut, d.Payload)
		fmt.Printf("  TnB: %q (pass %d, %d rescued codewords)\n", d.Payload, d.Pass, d.Rescued)
	}
	score("TnB", tnbOut)
}
