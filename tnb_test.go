package tnb

import (
	"bytes"
	"math/rand"
	"testing"

	"tnb/internal/lora"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	params := Params(8, 4)
	rng := rand.New(rand.NewSource(1))
	b := NewTraceBuilder(params, 0.6, 1, rng)
	payload := []byte("public api test")
	if err := b.AddPacket(3, 1, payload, 15000.5, 12, -1800, nil); err != nil {
		t.Fatal(err)
	}
	tr, truth := b.Build()
	if len(truth) != 1 {
		t.Fatalf("%d records", len(truth))
	}
	rx := NewReceiver(ReceiverConfig{Params: params, UseBEC: true})
	decoded := rx.Decode(tr)
	if len(decoded) != 1 || !bytes.Equal(decoded[0].Payload, payload) {
		t.Fatalf("decode failed: %v", decoded)
	}
}

func TestPublicEncode(t *testing.T) {
	shifts, err := Encode(Params(8, 2), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) <= lora.HeaderSymbols {
		t.Errorf("%d shifts", len(shifts))
	}
	if _, err := Encode(Params(8, 2), make([]byte, 300)); err == nil {
		t.Error("expected error for oversized payload")
	}
}

func TestPublicBECDecode(t *testing.T) {
	blk := lora.NewBlock(8, 8)
	for r := 0; r < 8; r++ {
		blk.SetRowCodeword(r, lora.HammingEncode(uint8(r), 4))
	}
	res := DecodeBlockBEC(blk, 4)
	if !res.NoError {
		t.Error("clean block should report NoError")
	}
}

func TestPublicDeployments(t *testing.T) {
	if DeploymentIndoor.Nodes != 19 || DeploymentOutdoor1.Nodes != 25 || DeploymentOutdoor2.Nodes != 25 {
		t.Error("deployment node counts must match the paper")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	cfg := Experiment{
		Deployment:    Deployment{Name: "api", Nodes: 4, MeanDB: 12, SpreadDB: 3, MinDB: 5, MaxDB: 20},
		SF:            8,
		CR:            4,
		LoadPktPerSec: 4,
		DurationSec:   1.0,
		Seed:          2,
	}
	res, err := RunExperiment(cfg, SchemeTnB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 4 {
		t.Errorf("sent %d", res.Sent)
	}
	if res.Decoded == 0 {
		t.Error("nothing decoded at trivial load")
	}
}

func TestBaselineConstructors(t *testing.T) {
	p := Params(8, 4)
	if NewCICReceiver(p, true) == nil || NewLoRaPHYReceiver(p) == nil {
		t.Fatal("constructors returned nil")
	}
}
