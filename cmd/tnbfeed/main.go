// tnbfeed streams an IQ trace file to a tnbgateway server and prints the
// decoded packet reports it returns.
//
// Usage:
//
//	tnbfeed -addr 127.0.0.1:7002 -sf 8 trace.iq
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"tnb/internal/gateway"
	"tnb/internal/lora"
	"tnb/internal/trace"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7002", "gateway address")
		sf   = flag.Int("sf", 8, "spreading factor of the trace")
		bw   = flag.Float64("bw", 125e3, "bandwidth in Hz")
		osf  = flag.Int("osf", 8, "over-sampling factor")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnbfeed [flags] <trace.iq>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	params := lora.MustParams(*sf, 4, *bw, *osf)
	tr, err := trace.ReadIQ16(f, params.SampleRate())
	if err != nil {
		log.Fatal(err)
	}

	c, err := gateway.Dial(*addr, gateway.Hello{SF: *sf, CR: 4, Bandwidth: *bw, OSF: *osf})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Send(tr.Antennas[0]); err != nil {
		log.Fatal(err)
	}
	reports, err := c.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("- gateway decoded %d pkts -\n", len(reports))
	enc := json.NewEncoder(os.Stdout)
	for _, r := range reports {
		enc.Encode(r)
	}
}
