// tnbfeed streams an IQ trace file to a tnbgateway server and prints the
// decoded packet reports it returns. Transient failures (connection
// refused, overload shedding) are retried with exponential backoff; a
// typed server verdict (bad hello, sample cap) is printed with its code
// and not retried.
//
// Usage:
//
//	tnbfeed -addr 127.0.0.1:7002 -sf 8 -retries 4 trace.iq
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tnb/internal/gateway"
	"tnb/internal/lora"
	"tnb/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7002", "gateway address")
		sf        = flag.Int("sf", 8, "spreading factor of the trace")
		channel   = flag.Int("channel", 0, "logical channel index for shard routing")
		bw        = flag.Float64("bw", 125e3, "bandwidth in Hz")
		osf       = flag.Int("osf", 8, "over-sampling factor")
		retries   = flag.Int("retries", 4, "total attempts for transient failures (connect errors, overload shedding)")
		retryBase = flag.Duration("retry-base", 50*time.Millisecond, "first retry delay; doubles per attempt with jitter")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnbfeed [flags] <trace.iq>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	params := lora.MustParams(*sf, 4, *bw, *osf)
	tr, err := trace.ReadIQ16(f, params.SampleRate())
	if err != nil {
		log.Fatal(err)
	}

	hello := gateway.Hello{SF: *sf, CR: 4, Bandwidth: *bw, OSF: *osf, Channel: *channel}
	reports, err := gateway.Stream(*addr, hello, tr.Antennas[0],
		gateway.Backoff{Attempts: *retries, Base: *retryBase})
	if err != nil {
		var ge *gateway.GatewayError
		if errors.As(err, &ge) {
			log.Fatalf("server rejected the stream (code %s): %s", ge.Code, ge.Message)
		}
		log.Fatal(err)
	}
	fmt.Printf("- gateway decoded %d pkts -\n", len(reports))
	enc := json.NewEncoder(os.Stdout)
	for _, r := range reports {
		enc.Encode(r)
	}
}
