// tnbtrace inspects JSONL decode-trace files produced by tnbsim, tnbdecode
// and tnbgateway (-trace-out), and indexed trace stores written with
// -trace-store.
//
// Usage:
//
//	tnbtrace -check traces.jsonl     # validate against the schema (CI)
//	tnbtrace -summary traces.jsonl   # failure-reason breakdown
//	tnbtrace -explain 0 traces.jsonl # render one packet trace
//
// With no file argument, stdin is read.
//
// With -store DIR the same verbs run against an indexed trace store, and
// the filter flags select records (NDJSON on stdout, newest first):
//
//	tnbtrace -store traces.d -check              # segment + index integrity
//	tnbtrace -store traces.d -summary            # failure-reason breakdown
//	tnbtrace -store traces.d -reason bec_budget_exhausted -channel 3 -limit 100
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"tnb/internal/obs"
	"tnb/internal/tracestore"
)

func main() {
	var (
		check   = flag.Bool("check", false, "validate every record against the trace schema; non-zero exit on the first violation")
		summary = flag.Bool("summary", false, "print per-type record counts and the failure-reason breakdown")
		explain = flag.Int("explain", -1, "render packet trace N (file order, final verdicts only)")
		store   = flag.String("store", "", "operate on an indexed trace store directory instead of a JSONL file")
		qType   = flag.String("type", "", "store query: comma-separated record types (packet,detect,stream,conn,net)")
		reason  = flag.String("reason", "", "store query: failure/drop reason")
		channel = flag.String("channel", "", "store query: channel")
		sf      = flag.String("sf", "", "store query: spreading factor")
		gateway = flag.String("gateway", "", "store query: gateway ID")
		since   = flag.String("since", "", "store query: minimum appended-at unix time, seconds")
		limit   = flag.String("limit", "", "store query: row cap, newest first (default 100, -1 = all)")
	)
	flag.Parse()
	if *store != "" {
		runStore(*store, *check, *summary, *explain, map[string][]string{
			"type": {*qType}, "reason": {*reason}, "channel": {*channel},
			"sf": {*sf}, "gateway": {*gateway}, "since": {*since}, "limit": {*limit},
		})
		return
	}
	if !*check && !*summary && *explain < 0 {
		*summary = true
	}

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	data, err := io.ReadAll(bufio.NewReader(in))
	if err != nil {
		log.Fatal(err)
	}

	if *check {
		counts, err := obs.ValidateJSONL(bytesReader(data))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			log.Fatalf("%s: no trace records", name)
		}
		fmt.Printf("%s: %d records valid (", name, total)
		printCounts(counts)
		fmt.Println(")")
	}

	if *summary {
		printSummary(name, data)
	}
	if *explain >= 0 {
		explainNth(data, *explain)
	}
}

func bytesReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

func printCounts(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s: %d", k, counts[k])
	}
}

func printSummary(name string, data []byte) {
	packets, decoded := 0, 0
	reasons := map[obs.FailureReason]int{}
	for _, pt := range packetTraces(data) {
		if !pt.Final {
			continue
		}
		packets++
		if pt.OK {
			decoded++
		} else {
			reasons[pt.FailureReason]++
		}
	}
	fmt.Printf("%s: %d packets, %d decoded\n", name, packets, decoded)
	if len(reasons) == 0 {
		return
	}
	fmt.Println("failures:")
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %d\n", k, reasons[obs.FailureReason(k)])
	}
}

func explainNth(data []byte, n int) {
	var final []*obs.PacketTrace
	for _, pt := range packetTraces(data) {
		if pt.Final {
			final = append(final, pt)
		}
	}
	if n >= len(final) {
		log.Fatalf("explain: packet %d out of range (%d final traces)", n, len(final))
	}
	obs.Explain(os.Stdout, final[n])
}

// runStore is the -store entry point: integrity check, summary/explain
// over the packet records, or a filtered query printed as NDJSON newest
// first. The store is opened read-only, so it is safe against a live
// writer and never mutates what a crashed one left behind.
func runStore(dir string, check, summary bool, explain int, qv map[string][]string) {
	if check {
		res, err := tracestore.Check(dir)
		if err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		total := 0
		for _, n := range res.Records {
			total += n
		}
		if total == 0 {
			log.Fatalf("%s: no trace records", dir)
		}
		fmt.Printf("%s: %d segments, %d records valid (", dir, res.Segments, total)
		printCounts(res.Records)
		fmt.Print(")")
		if res.TornTail {
			fmt.Print(", torn tail pending truncation on next writable open")
		}
		fmt.Println()
	}

	filtered := false
	for _, vs := range qv {
		for _, v := range vs {
			if v != "" {
				filtered = true
			}
		}
	}
	queryMode := filtered || (!check && !summary && explain < 0)
	if !summary && explain < 0 && !queryMode {
		return
	}

	ro, err := tracestore.Open(tracestore.Options{Dir: dir, ReadOnly: true})
	if err != nil {
		log.Fatalf("%s: %v", dir, err)
	}
	if summary || explain >= 0 {
		res, err := ro.Query(tracestore.Query{Types: []string{obs.TypePacket}, Limit: -1})
		if err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		// Query returns newest first; summaries and -explain indices follow
		// append order, so flip back.
		var data []byte
		for i := len(res) - 1; i >= 0; i-- {
			data = append(data, res[i].Record...)
			data = append(data, '\n')
		}
		if summary {
			printSummary(dir, data)
		}
		if explain >= 0 {
			explainNth(data, explain)
		}
	}
	if queryMode {
		q, err := tracestore.ParseQuery(qv)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ro.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", dir, err)
		}
		w := bufio.NewWriter(os.Stdout)
		for _, r := range res {
			w.Write(r.Record)
			w.WriteByte('\n')
		}
		w.Flush()
	}
}

func packetTraces(data []byte) []*obs.PacketTrace {
	var out []*obs.PacketTrace
	sc := bufio.NewScanner(bytesReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(line, &head) != nil || head.Type != obs.TypePacket {
			continue
		}
		var pt obs.PacketTrace
		if json.Unmarshal(line, &pt) == nil {
			out = append(out, &pt)
		}
	}
	return out
}
