// tnbtrace inspects JSONL decode-trace files produced by tnbsim, tnbdecode
// and tnbgateway (-trace-out).
//
// Usage:
//
//	tnbtrace -check traces.jsonl     # validate against the schema (CI)
//	tnbtrace -summary traces.jsonl   # failure-reason breakdown
//	tnbtrace -explain 0 traces.jsonl # render one packet trace
//
// With no file argument, stdin is read.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"tnb/internal/obs"
)

func main() {
	var (
		check   = flag.Bool("check", false, "validate every record against the trace schema; non-zero exit on the first violation")
		summary = flag.Bool("summary", false, "print per-type record counts and the failure-reason breakdown")
		explain = flag.Int("explain", -1, "render packet trace N (file order, final verdicts only)")
	)
	flag.Parse()
	if !*check && !*summary && *explain < 0 {
		*summary = true
	}

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}
	data, err := io.ReadAll(bufio.NewReader(in))
	if err != nil {
		log.Fatal(err)
	}

	if *check {
		counts, err := obs.ValidateJSONL(bytesReader(data))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			log.Fatalf("%s: no trace records", name)
		}
		fmt.Printf("%s: %d records valid (", name, total)
		printCounts(counts)
		fmt.Println(")")
	}

	if *summary {
		printSummary(name, data)
	}
	if *explain >= 0 {
		explainNth(data, *explain)
	}
}

func bytesReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

func printCounts(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s: %d", k, counts[k])
	}
}

func printSummary(name string, data []byte) {
	packets, decoded := 0, 0
	reasons := map[obs.FailureReason]int{}
	for _, pt := range packetTraces(data) {
		if !pt.Final {
			continue
		}
		packets++
		if pt.OK {
			decoded++
		} else {
			reasons[pt.FailureReason]++
		}
	}
	fmt.Printf("%s: %d packets, %d decoded\n", name, packets, decoded)
	if len(reasons) == 0 {
		return
	}
	fmt.Println("failures:")
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %d\n", k, reasons[obs.FailureReason(k)])
	}
}

func explainNth(data []byte, n int) {
	var final []*obs.PacketTrace
	for _, pt := range packetTraces(data) {
		if pt.Final {
			final = append(final, pt)
		}
	}
	if n >= len(final) {
		log.Fatalf("explain: packet %d out of range (%d final traces)", n, len(final))
	}
	obs.Explain(os.Stdout, final[n])
}

func packetTraces(data []byte) []*obs.PacketTrace {
	var out []*obs.PacketTrace
	sc := bufio.NewScanner(bytesReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(line, &head) != nil || head.Type != obs.TypePacket {
			continue
		}
		var pt obs.PacketTrace
		if json.Unmarshal(line, &pt) == nil {
			out = append(out, &pt)
		}
	}
	return out
}
