// tnbnet runs a simulated LoRaWAN deployment end to end: a seeded fleet
// of duty-cycled, channel-hopping nodes heard by several gateways feeds
// the network-server layer (cross-gateway dedup, OTAA joins, per-tenant
// quotas), and every join, delivery and drop is emitted as a JSON line on
// stdout. The whole run is a pure function of -seed: worker width and
// batch size change wall-clock only, never bytes.
//
// Usage:
//
//	tnbnet -seed 1 -gateways 3 -nodes 8 -channels 1,3 -sfs 7,8
//
// By default the fleet hands the netserver ready-made LoRaWAN frames. With
// -phy the data phase additionally goes through the radio: each gateway's
// receptions are rendered to an IQ trace per (channel, SF) shard and
// decoded by a real loopback gateway server (so the TnB receiver, the
// shard routing and the netserver are exercised as one system). PHY mode
// is CPU-heavy; keep -duration and -nodes small.
//
// With -metrics set, an HTTP ops endpoint serves:
//
//	GET /metrics      Prometheus text exposition
//	GET /metrics.json the same registry as JSON
//	GET /healthz      liveness
//	GET /netserver    netserver stats (sessions, dedup, quotas, per-shard)
//
// With -trace-store DIR, every netserver drop (and, under -phy, every
// gateway trace record) is persisted to a crash-safe indexed store in DIR
// and can be queried live via GET /debug/traces/query or offline with
// tnbtrace -store DIR.
//
// -summary writes the final run report (activation, event and drop
// counters, per-shard traffic) as JSON to a file, for scripts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"tnb/internal/fleet"
	"tnb/internal/gateway"
	"tnb/internal/lora"
	"tnb/internal/metrics"
	"tnb/internal/netserver"
	"tnb/internal/obs"
	"tnb/internal/trace"
	"tnb/internal/tracestore"
)

func main() {
	seed := flag.Int64("seed", 1, "fleet seed; every byte of output is a function of it")
	nodes := flag.Int("nodes", 8, "simulated node count")
	gateways := flag.Int("gateways", 2, "simulated gateway count")
	channels := flag.String("channels", "1,3", "comma-separated uplink channel hop set")
	sfs := flag.String("sfs", "7,8", "comma-separated spreading factors, assigned round-robin")
	packets := flag.Int("packets", 3, "data uplinks per node across the run")
	duration := flag.Float64("duration", 0, "traffic-phase span in seconds (0 = 30 frame mode, 4 PHY mode)")
	corrupt := flag.Int("corrupt", 60, "per-copy in-flight corruption probability, permille")
	phy := flag.Bool("phy", false, "render the data phase to IQ and decode it through a real loopback gateway per simulated gateway")
	osf := flag.Int("osf", 2, "PHY oversampling factor")
	workers := flag.Int("workers", 1, "verification/decode worker width (0 = all cores); output is identical for every value")
	shards := flag.Int("shards", 0, "netserver state-shard count (0 = default); output is identical for every value")
	batch := flag.Int("batch", fleet.DefaultBatch, "uplinks per netserver Ingest call")
	dedupWindow := flag.Float64("dedup-window", netserver.DefaultDedupWindowSec, "cross-gateway dedup window, seconds")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant delivery quota, deliveries/sec (0 = unlimited)")
	quotaBurst := flag.Float64("quota-burst", 2, "per-tenant quota burst depth")
	metricsAddr := flag.String("metrics", "", "HTTP ops listen address (e.g. :9091); empty disables")
	traceStore := flag.String("trace-store", "", "persist netserver drop traces (and, with -phy, gateway traces) to an indexed store in this directory")
	summary := flag.String("summary", "", "write the final run report as JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress progress logs (events still go to stdout)")
	flag.Parse()

	logOut := io.Writer(os.Stderr)
	if *quiet {
		logOut = io.Discard
	}
	log := slog.New(slog.NewTextHandler(logOut, nil))
	if err := run(log, config{
		seed: *seed, nodes: *nodes, gateways: *gateways,
		channels: *channels, sfs: *sfs, packets: *packets,
		duration: *duration, corrupt: *corrupt,
		phy: *phy, osf: *osf, workers: *workers, shards: *shards, batch: *batch,
		dedupWindow: *dedupWindow, quotaRate: *quotaRate, quotaBurst: *quotaBurst,
		metricsAddr: *metricsAddr, summary: *summary, traceStore: *traceStore,
	}); err != nil {
		log.Error("tnbnet failed", "err", err)
		os.Exit(1)
	}
}

type config struct {
	seed                               int64
	nodes, gateways                    int
	channels, sfs                      string
	packets                            int
	duration                           float64
	corrupt                            int
	phy                                bool
	osf, workers, shards, batch        int
	dedupWindow, quotaRate, quotaBurst float64
	metricsAddr, summary, traceStore   string
}

func run(log *slog.Logger, cfg config) error {
	chans, err := parseIntList(cfg.channels)
	if err != nil {
		return fmt.Errorf("-channels: %w", err)
	}
	sfList, err := parseIntList(cfg.sfs)
	if err != nil {
		return fmt.Errorf("-sfs: %w", err)
	}
	dur := cfg.duration
	if dur == 0 {
		dur = 30
		if cfg.phy {
			dur = 4
		}
	}

	f, err := fleet.New(fleet.Config{
		Seed: cfg.seed, Nodes: cfg.nodes, Gateways: cfg.gateways,
		Channels: chans, SFs: sfList,
		PacketsPerNode: cfg.packets, DurationSec: dur,
		CorruptPermille: cfg.corrupt,
	})
	if err != nil {
		return err
	}

	var store *tracestore.Store
	var tracer *obs.Tracer
	if cfg.traceStore != "" {
		store, err = tracestore.Open(tracestore.Options{
			Dir:     cfg.traceStore,
			Metrics: tracestore.NewMetrics(metrics.Default),
		})
		if err != nil {
			return fmt.Errorf("open trace store: %w", err)
		}
		tracer = obs.New(obs.Options{Spill: store})
		defer store.Close()
	}

	nsCfg := netserver.Config{
		DedupWindowSec: cfg.dedupWindow,
		Workers:        cfg.workers,
		Shards:         cfg.shards,
		Devices:        f.Devices(),
		Tracer:         tracer,
	}
	if cfg.quotaRate > 0 {
		nsCfg.Quotas = map[string]netserver.Quota{}
		for _, d := range nsCfg.Devices {
			nsCfg.Quotas[d.Tenant] = netserver.Quota{RatePerSec: cfg.quotaRate, Burst: cfg.quotaBurst}
		}
	}
	if cfg.metricsAddr != "" {
		nsCfg.Metrics = netserver.NewMetrics(metrics.Default)
	}
	ns, err := netserver.New(nsCfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if cfg.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", metrics.Handler(metrics.Default))
		mux.Handle("/netserver", ns.Handler())
		if store != nil {
			mux.Handle("/debug/traces/query", store.Handler())
		}
		go func() {
			log.Info("ops endpoint listening", "addr", cfg.metricsAddr,
				"paths", "/metrics /metrics.json /healthz /netserver")
			if err := metrics.ListenAndServeHandler(ctx, cfg.metricsAddr, mux); err != nil {
				log.Error("ops endpoint failed", "err", err)
			}
		}()
	}

	out := json.NewEncoder(os.Stdout)
	emit := func(ev netserver.Event) { out.Encode(ev) }

	var rep fleet.Report
	if cfg.phy {
		rep, err = runPHY(log, f, ns, cfg, tracer, emit)
	} else {
		rep, err = fleet.Drive(f, ns, cfg.batch, emit)
	}
	if err != nil {
		return err
	}
	if store != nil {
		if err := store.Close(); err != nil {
			return fmt.Errorf("trace store: %w", err)
		}
		if n := store.Dropped(); n > 0 {
			log.Warn("trace store dropped records under backpressure", "dropped", n)
		}
	}
	log.Info("run complete",
		"activated", rep.Activated, "events", rep.Events,
		"uplinks", rep.Stats.Uplinks, "delivered", rep.Stats.Delivered,
		"dups", rep.Stats.DupSuppressed, "dropped", rep.Stats.Dropped,
		"quota_dropped", rep.Stats.QuotaDropped, "sessions", rep.Stats.Sessions)

	if cfg.summary != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.summary, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runPHY drives the join phase at the frame level (activation is control
// plane), then pushes the data phase through the radio: per simulated
// gateway, each (channel, SF) group of receptions is rendered to IQ and
// decoded by a loopback gateway server — landing on that server's
// (channel, SF) shard — before the reports are handed to the netserver.
func runPHY(log *slog.Logger, f *fleet.Fleet, ns *netserver.Server, cfg config, tracer *obs.Tracer, emit func(netserver.Event)) (fleet.Report, error) {
	var rep fleet.Report
	sink := func(evs []netserver.Event) []netserver.Event {
		rep.Events += len(evs)
		for _, ev := range evs {
			emit(ev)
		}
		return evs
	}

	// Join phase: frames straight into the netserver.
	joins, err := f.JoinRequests()
	if err != nil {
		return rep, err
	}
	evs, err := ns.Ingest(joins)
	if err != nil {
		return rep, err
	}
	joinEvs := sink(evs)
	evs, err = ns.AdvanceTo(f.TrafficStartSec())
	if err != nil {
		return rep, err
	}
	joinEvs = append(joinEvs, sink(evs)...)
	if rep.Activated, err = f.ApplyJoinAccepts(joinEvs); err != nil {
		return rep, err
	}

	// Data phase: group receptions per (gateway, channel, SF), render each
	// group to IQ, decode it through that gateway's loopback server.
	traffic, err := f.Traffic()
	if err != nil {
		return rep, err
	}
	groups := map[groupKey][]netserver.Uplink{}
	for _, u := range traffic {
		k := groupKey{gw: u.GatewayID, ch: u.Channel, sf: u.SF}
		groups[k] = append(groups[k], u)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })

	servers := map[string]*gwServer{}
	defer func() {
		for _, s := range servers {
			s.stop()
		}
	}()
	var decoded []netserver.Uplink
	for _, k := range keys {
		srv := servers[k.gw]
		if srv == nil {
			srv, err = startGateway(log, cfg.workers, k.gw, tracer)
			if err != nil {
				return rep, err
			}
			servers[k.gw] = srv
		}
		ups, err := decodeGroup(f, srv, k, groups[k], cfg.osf)
		if err != nil {
			return rep, fmt.Errorf("phy %s c%d sf%d: %w", k.gw, k.ch, k.sf, err)
		}
		log.Info("phy shard decoded", "gateway", k.gw, "channel", k.ch, "sf", k.sf,
			"sent", len(groups[k]), "decoded", len(ups))
		decoded = append(decoded, ups...)
	}
	for gw, s := range servers {
		log.Info("gateway shards", "gateway", gw, "shards", s.srv.ShardCount())
	}

	fleet.SortUplinks(decoded)
	for len(decoded) > 0 {
		n := cfg.batch
		if n > len(decoded) {
			n = len(decoded)
		}
		evs, err := ns.Ingest(decoded[:n])
		if err != nil {
			return rep, err
		}
		sink(evs)
		decoded = decoded[n:]
	}
	evs, err = ns.Flush()
	if err != nil {
		return rep, err
	}
	sink(evs)
	rep.Stats = ns.Stats()
	return rep, nil
}

type groupKey struct {
	gw     string
	ch, sf int
}

func (k groupKey) less(o groupKey) bool {
	if k.gw != o.gw {
		return k.gw < o.gw
	}
	if k.ch != o.ch {
		return k.ch < o.ch
	}
	return k.sf < o.sf
}

// gwServer is one loopback gateway instance standing in for a physical
// gateway: every (channel, SF) connection lands on its own decode shard.
type gwServer struct {
	srv    *gateway.Server
	addr   string
	cancel context.CancelFunc
	done   chan error
}

func startGateway(log *slog.Logger, workers int, id string, tracer *obs.Tracer) (*gwServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &gwServer{
		srv:    &gateway.Server{Log: log, Workers: workers, ID: id, Tracer: tracer},
		addr:   ln.Addr().String(),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ctx, ln) }()
	return s, nil
}

func (s *gwServer) stop() {
	s.cancel()
	<-s.done
}

// decodeGroup renders one (gateway, channel, SF) group of receptions to an
// IQ trace and decodes it through the gateway's shard for that key.
func decodeGroup(f *fleet.Fleet, srv *gwServer, k groupKey, ups []netserver.Uplink, osf int) ([]netserver.Uplink, error) {
	p, err := lora.NewParams(k.sf, 4, 125e3, osf)
	if err != nil {
		return nil, err
	}
	t0 := f.TrafficStartSec()
	span := 1.0
	for _, u := range ups {
		if s := u.TimeSec - t0; s > span {
			span = s
		}
	}
	// Deterministic per-group noise/phase seed.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", k.gw, k.ch, k.sf)
	rng := rand.New(rand.NewSource(int64(h.Sum64()>>1) ^ 0x5EED))

	b := trace.NewBuilder(p, span+1.0, 1, rng)
	for i, u := range ups {
		start := (u.TimeSec - t0) * p.SampleRate()
		if err := b.AddPacket(i, 0, u.Payload, start, u.SNRdB, 0, nil); err != nil {
			return nil, err
		}
	}
	tr, _ := b.Build()

	c, err := gateway.Dial(srv.addr, gateway.Hello{SF: k.sf, CR: 4, OSF: osf, Channel: k.ch})
	if err != nil {
		return nil, err
	}
	if err := c.Send(tr.Antennas[0]); err != nil {
		return nil, err
	}
	reports, err := c.Finish()
	if err != nil {
		return nil, err
	}
	return gateway.Uplinks(make([]netserver.Uplink, 0, len(reports)), reports, k.gw, k.sf, t0, p.SampleRate()), nil
}

// parseIntList parses "1,3,8" into ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad element %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
