// tnbsim regenerates the paper's evaluation figures on synthetic traces.
//
// Usage:
//
//	tnbsim -fig 12 -sf 8 -duration 10        # throughput vs load, Indoor
//	tnbsim -fig 15 -sf 10                    # component ablation
//	tnbsim -fig 19 -sf 8                     # ETU channel comparison
//
// Figures: 10 (SNR CDF), 11 (medium usage), 12/13/14 (throughput per
// deployment), 15 (ablation), 16 (BEC rescued codewords), 17 (PRR vs SNR),
// 18 (collision levels), 19 (ETU). Fig. 20 lives in cmd/becprob.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/pprof"

	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/sim"
	"tnb/internal/tracestore"
)

func main() {
	var (
		fig        = flag.Int("fig", 12, "figure number to regenerate")
		sf         = flag.Int("sf", 8, "spreading factor (8 or 10 in the paper)")
		cr         = flag.Int("cr", 4, "coding rate for single-CR figures")
		duration   = flag.Float64("duration", 4, "seconds per run (paper: 30)")
		runs       = flag.Int("runs", 1, "runs averaged per point (paper: 3)")
		nodes      = flag.Int("nodes", 0, "override node count (0 = paper's)")
		seed       = flag.Int64("seed", 1, "random seed")
		metaOut    = flag.String("metrics-out", "", "write the pipeline metrics registry as JSON to this file (same schema as the gateway's /metrics.json)")
		traceOut   = flag.String("trace-out", "", "write per-packet decode traces as JSONL to this file (TnB-family schemes only)")
		traceStore = flag.String("trace-store", "", "persist decode traces in an indexed on-disk ring at this directory (query with tnbtrace -store)")
		workers    = flag.Int("workers", 1, "receiver worker-pool width per decode (0 = all cores, 1 = serial); output is identical for every value")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()
	sim.SetWorkers(*workers)
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		// LIFO: stop (which flushes) must run before the file closes.
		defer pf.Close()
		defer pprof.StopCPUProfile()
	}

	var traceFile *os.File
	var sink io.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		traceFile = f
		sink = f
	}
	var store *tracestore.Store
	if *traceStore != "" {
		st, err := tracestore.Open(tracestore.Options{
			Dir: *traceStore, Metrics: tracestore.NewMetrics(metrics.Default),
		})
		if err != nil {
			log.Fatalf("trace-store: %v", err)
		}
		store = st
	}
	if sink != nil || store != nil {
		sim.SetTracer(obs.New(obs.Options{Sink: sink, Spill: store}))
	}

	scale := sim.FigureScale{
		DurationSec: *duration,
		Runs:        *runs,
		Loads:       []float64{5, 10, 15, 20, 25},
		Nodes:       *nodes,
	}
	w := os.Stdout

	switch *fig {
	case 10:
		for _, dep := range sim.Deployments {
			cdf, err := sim.FigSNRCDF(dep, *sf, scale, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s (SF %d): estimated SNR CDF over %d decoded packets\n", dep.Name, *sf, cdf.Len())
			vals, probs := cdf.Points(9)
			for i := range vals {
				fmt.Fprintf(w, "  %6.1f dB: %.2f\n", vals[i], probs[i])
			}
		}
	case 11:
		for _, sfv := range []int{8, 10} {
			usage, err := sim.FigMediumUsage(sim.Indoor, sfv, scale, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "SF %d medium usage (packets on air, 250 ms bins, lower bound):\n  ", sfv)
			for _, u := range usage {
				fmt.Fprintf(w, "%d ", u)
			}
			fmt.Fprintln(w)
		}
	case 12, 13, 14:
		dep := sim.Deployments[*fig-12]
		schemes := []sim.Scheme{sim.SchemeTnB, sim.SchemeCIC, sim.SchemeAlignTrack, sim.SchemeLoRaPHY}
		for _, crv := range []int{1, 2, 3, 4} {
			fmt.Fprintf(w, "\n%s, SF %d, CR %d — throughput (pkt/s):\n", dep.Name, *sf, crv)
			series, err := sim.FigThroughput(dep, *sf, crv, schemes, scale, *seed)
			if err != nil {
				log.Fatal(err)
			}
			sim.PrintThroughput(w, series)
		}
	case 15:
		schemes := []sim.Scheme{sim.SchemeTnB, sim.SchemeThrive, sim.SchemeSibling, sim.SchemeCIC}
		for _, dep := range sim.Deployments {
			fmt.Fprintf(w, "\n%s, SF %d, CR %d — component ablation (pkt/s at highest load):\n", dep.Name, *sf, *cr)
			hs := scale
			hs.Loads = scale.Loads[len(scale.Loads)-1:]
			series, err := sim.FigThroughput(dep, *sf, *cr, schemes, hs, *seed)
			if err != nil {
				log.Fatal(err)
			}
			sim.PrintThroughput(w, series)
		}
	case 16:
		for _, dep := range sim.Deployments {
			cdf, err := sim.FigRescuedCDF(dep, *sf, *cr, scale, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s: BEC-rescued codewords per decoded packet (n=%d)\n", dep.Name, cdf.Len())
			for _, k := range []float64{0, 1, 2, 4, 8} {
				fmt.Fprintf(w, "  P(rescued <= %.0f) = %.2f\n", k, cdf.At(k))
			}
		}
	case 17:
		for _, dep := range sim.Deployments {
			buckets, err := sim.FigPRRvsSNR(dep, *sf, *cr, scale, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s (SF %d CR %d): PRR by SNR range\n", dep.Name, *sf, *cr)
			for _, b := range buckets {
				if b.Packets == 0 {
					continue
				}
				fmt.Fprintf(w, "  [%4.0f, %4.0f) dB: TnB %.2f  CIC %.2f  (n=%d)\n",
					b.SNRLo, b.SNRHi, b.PRRTnB, b.PRRCIC, b.Packets)
			}
		}
	case 18:
		for _, sfv := range []int{8, 10} {
			dist, err := sim.FigCollisionLevels(sim.Indoor, sfv, scale, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "SF %d collision levels of decoded packets (lower bound):\n", sfv)
			sim.PrintDistribution(w, dist)
		}
	case 19:
		schemes := []sim.Scheme{
			sim.SchemeCIC, sim.SchemeCICBEC, sim.SchemeAlignTrack, sim.SchemeAlignTrackBEC,
			sim.SchemeThrive, sim.SchemeTnB, sim.SchemeTnB2Ant,
		}
		es := scale
		es.Loads = []float64{scaleLoad(*sf)}
		for _, crv := range []int{1, 2, 3, 4} {
			prr, err := sim.FigETU(*sf, crv, schemes, es, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\nETU channel, SF %d, CR %d — PRR:\n", *sf, crv)
			for _, s := range schemes {
				fmt.Fprintf(w, "  %-14s %.2f\n", s, prr[s])
			}
		}
	default:
		log.Fatalf("figure %d not handled here (Fig. 20: cmd/becprob; Tables 1-2: go test -bench Table)", *fig)
	}

	if *metaOut != "" {
		if err := dumpMetrics(*metaOut); err != nil {
			log.Fatalf("metrics-out: %v", err)
		}
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Fatalf("trace-store: %v", err)
		}
	}
}

// dumpMetrics writes the process registry — populated by every receiver the
// run built — as JSON, so offline experiments and live gateways share one
// observability schema.
func dumpMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// scaleLoad picks the ETU traffic load so the strongest scheme stays near
// PRR 0.9, as in §8.5.
func scaleLoad(sf int) float64 {
	if sf == 10 {
		return 3
	}
	return 6
}
