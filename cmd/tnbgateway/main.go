// tnbgateway runs the TnB receiver as a network service: clients connect
// over TCP, send a JSON hello line with the radio parameters, stream raw
// int16-interleaved IQ samples, and receive one JSON line per decoded
// packet.
//
// Usage:
//
//	tnbgateway -listen :7002 -metrics :9090
//
// Feed it with cmd/tnbfeed, or from any SDR pipeline that can emit int16
// IQ over TCP. With -metrics set, an HTTP ops endpoint serves
// GET /metrics (Prometheus text), GET /metrics.json and GET /healthz —
// per-stage pipeline latencies, packet counters and connection gauges.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"

	"tnb/internal/gateway"
	"tnb/internal/metrics"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7002", "TCP listen address")
	metricsAddr := flag.String("metrics", "", "HTTP ops listen address (e.g. :9090); empty disables")
	quiet := flag.Bool("quiet", false, "suppress per-connection logs")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &gateway.Server{Registry: metrics.Default}
	if !*quiet {
		srv.Logf = log.Printf
	}
	if *metricsAddr != "" {
		go func() {
			log.Printf("tnb gateway ops endpoint on %s (/metrics, /metrics.json, /healthz)", *metricsAddr)
			if err := metrics.ListenAndServe(ctx, *metricsAddr, metrics.Default); err != nil {
				log.Fatalf("metrics endpoint: %v", err)
			}
		}()
	}
	if err := srv.ListenAndServe(ctx, *listen); err != nil {
		log.Fatal(err)
	}
}
