// tnbgateway runs the TnB receiver as a network service: clients connect
// over TCP, send a JSON hello line with the radio parameters, stream raw
// int16-interleaved IQ samples, and receive one JSON line per decoded
// packet.
//
// Usage:
//
//	tnbgateway -listen :7002
//
// Feed it with cmd/tnbfeed, or from any SDR pipeline that can emit int16
// IQ over TCP.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"

	"tnb/internal/gateway"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7002", "TCP listen address")
	quiet := flag.Bool("quiet", false, "suppress per-connection logs")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &gateway.Server{}
	if !*quiet {
		srv.Logf = log.Printf
	}
	if err := srv.ListenAndServe(ctx, *listen); err != nil {
		log.Fatal(err)
	}
}
