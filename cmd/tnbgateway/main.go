// tnbgateway runs the TnB receiver as a network service: clients connect
// over TCP, send a JSON hello line with the radio parameters, stream raw
// int16-interleaved IQ samples, and receive one JSON line per decoded
// packet.
//
// Usage:
//
//	tnbgateway -listen :7002 -metrics :9090 -trace-out traces.jsonl
//
// Feed it with cmd/tnbfeed, or from any SDR pipeline that can emit int16
// IQ over TCP. With -metrics set, an HTTP ops endpoint serves:
//
//	GET /metrics        Prometheus text exposition
//	GET /metrics.json   the same registry as JSON
//	GET /healthz        liveness
//	GET /debug/traces   ring of recent per-packet decode traces (JSON)
//	GET /debug/traces/query  indexed queries over the -trace-store ring
//	GET /debug/pprof/   CPU/heap/goroutine profiles (net/http/pprof)
//
// -trace-out additionally exports every decode trace as JSONL, and
// -trace-store persists them in an indexed on-disk ring queryable live
// (/debug/traces/query) or offline (tnbtrace -store).
package main

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tnb/internal/gateway"
	"tnb/internal/metrics"
	"tnb/internal/obs"
	"tnb/internal/tracestore"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7002", "TCP listen address")
	metricsAddr := flag.String("metrics", "", "HTTP ops listen address (e.g. :9090); empty disables")
	quiet := flag.Bool("quiet", false, "suppress per-connection logs")
	traceOut := flag.String("trace-out", "", "write per-packet decode traces as JSONL to this file")
	traceRing := flag.Int("trace-ring", 256, "decode traces kept for GET /debug/traces")
	traceStore := flag.String("trace-store", "", "persist decode traces in an indexed on-disk ring at this directory")
	gatewayID := flag.String("gateway-id", "", "gateway name stamped into every trace record's origin")
	workers := flag.Int("workers", 0, "receiver worker-pool width per connection (0 = all cores, 1 = serial); output is identical for every value")
	readTimeout := flag.Duration("read-timeout", 0, "per-read client deadline (0 = 2m default, negative disables)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-write client deadline (0 = 30s default, negative disables)")
	maxConns := flag.Int("max-conns", 0, "overload budget: shed connections past this many concurrent clients (0 = unlimited)")
	maxSamples := flag.Int64("max-samples", 0, "per-connection IQ sample cap; past it the client gets a sample_limit reply (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget before in-flight connections are force-closed")
	flag.Parse()

	logOut := io.Writer(os.Stderr)
	if *quiet {
		logOut = io.Discard
	}
	log := slog.New(slog.NewTextHandler(logOut, nil))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var sink io.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Error("trace-out", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	var store *tracestore.Store
	if *traceStore != "" {
		st, err := tracestore.Open(tracestore.Options{
			Dir: *traceStore, Metrics: tracestore.NewMetrics(metrics.Default),
		})
		if err != nil {
			log.Error("trace-store", "err", err)
			os.Exit(1)
		}
		defer st.Close()
		store = st
	}
	tracer := obs.New(obs.Options{Sink: sink, Spill: store, RingSize: *traceRing})

	srv := &gateway.Server{
		ID:       *gatewayID,
		Registry: metrics.Default, Tracer: tracer, Log: log, Workers: *workers,
		ReadTimeout: *readTimeout, WriteTimeout: *writeTimeout,
		MaxConns: *maxConns, MaxSamplesPerConn: *maxSamples,
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", metrics.Handler(metrics.Default))
		mux.Handle("/debug/traces", tracer.Handler())
		if store != nil {
			mux.Handle("/debug/traces/query", store.Handler())
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Info("ops endpoint listening", "addr", *metricsAddr,
				"paths", "/metrics /metrics.json /healthz /debug/traces /debug/traces/query /debug/pprof/")
			if err := metrics.ListenAndServeHandler(ctx, *metricsAddr, mux); err != nil {
				log.Error("ops endpoint failed", "err", err)
				os.Exit(1)
			}
		}()
	}
	// On SIGINT/SIGTERM the context cancels: stop accepting, drain
	// in-flight decodes for the budget, then force-close stragglers.
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Warn("drain budget expired; connections force-closed", "err", err)
		}
	}()
	if err := srv.ListenAndServe(ctx, *listen); err != nil {
		log.Error("gateway failed", "err", err)
		os.Exit(1)
	}
	log.Info("gateway stopped")
}
