// tnbspec renders an ASCII spectrogram (waterfall) of a region of an IQ
// trace file — the quickest way to eyeball chirps and collisions in a
// capture.
//
// Usage:
//
//	tnbspec -start 0 -samples 300000 trace.iq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tnb/internal/diag"
	"tnb/internal/trace"
)

func main() {
	var (
		start   = flag.Int("start", 0, "first sample of the region")
		samples = flag.Int("samples", 1<<18, "number of samples to render")
		fftSize = flag.Int("fft", 256, "FFT size (power of two)")
		hop     = flag.Int("hop", 0, "hop between rows (0 = fft/2)")
		width   = flag.Int("width", 96, "output width in characters")
		rangeDB = flag.Float64("range", 40, "dynamic range in dB")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnbspec [flags] <trace.iq>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadIQ16(f, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Antennas[0]
	lo := *start
	if lo < 0 || lo >= len(s) {
		log.Fatalf("start %d outside trace of %d samples", lo, len(s))
	}
	hi := lo + *samples
	if hi > len(s) {
		hi = len(s)
	}

	sg, err := diag.Compute(s[lo:hi], *fftSize, *hop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("samples %d..%d, %d rows x %d bins (time runs down, frequency -fs/2..fs/2)\n",
		lo, hi, len(sg.Rows), sg.FFTSize)
	if err := sg.RenderASCII(os.Stdout, *width, *rangeDB); err != nil {
		log.Fatal(err)
	}
}
