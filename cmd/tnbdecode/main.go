// tnbdecode decodes a LoRa IQ trace with TnB and prints the decoded packet
// list, mirroring the output of the paper artifact's TnBMain.m: the total
// count plus, per packet, the node ID, sequence number, estimated SNR,
// start time and CFO.
//
// Usage:
//
//	tnbdecode -sf 8 trace.iq
//	tnbdecode -sf 8 -trace-out traces.jsonl trace.iq
//	tnbdecode -sf 8 -explain 3 trace.iq     # per-symbol cost table of pkt 3
//
// -explain prints one packet's full decode trace: the detection estimate,
// the verdict with its failure reason, the BEC block table, and every
// symbol's peak-assignment costs. Packets are numbered by detection start
// order over ALL detected packets (decoded and failed), matching the index
// column that -explain -1 lists.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"sort"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/obs"
	"tnb/internal/stagegraph"
	"tnb/internal/thrive"
	"tnb/internal/trace"
	"tnb/internal/tracestore"
)

func main() {
	var (
		sf         = flag.Int("sf", 8, "spreading factor of the trace")
		osf        = flag.Int("osf", 8, "over-sampling factor")
		bw         = flag.Float64("bw", 125e3, "bandwidth in Hz")
		noBEC      = flag.Bool("nobec", false, "disable Block Error Correction")
		scheme     = flag.String("scheme", "tnb", "tnb | thrive | sibling")
		traceOut   = flag.String("trace-out", "", "write per-packet decode traces as JSONL to this file")
		traceStore = flag.String("trace-store", "", "persist decode traces in an indexed on-disk ring at this directory (query with tnbtrace -store)")
		explain    = flag.Int("explain", -2, "print the decode trace of packet N (start order, decoded and failed); -1 lists all packets")
		workers    = flag.Int("workers", 0, "receiver worker-pool width (0 = all cores, 1 = serial); output is identical for every value")
		record     = flag.String("record", "", "snapshot every stage boundary to a replayable recording at this file (inspect with tnbreplay)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the decode to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnbdecode [flags] <trace.iq>")
		os.Exit(2)
	}
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		// LIFO: stop (which flushes) must run before the file closes.
		defer pf.Close()
		defer pprof.StopCPUProfile()
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	params := lora.MustParams(*sf, 4, *bw, *osf)
	tr, err := trace.ReadIQ16(f, params.SampleRate())
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{Params: params, UseBEC: !*noBEC, Workers: *workers}
	switch *scheme {
	case "tnb", "thrive":
	case "sibling":
		cfg.Policy = thrive.PolicySibling
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	if *scheme == "thrive" {
		cfg.UseBEC = false
	}

	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
	}
	var store *tracestore.Store
	if *traceStore != "" {
		store, err = tracestore.Open(tracestore.Options{Dir: *traceStore})
		if err != nil {
			log.Fatalf("trace-store: %v", err)
		}
	}
	var tracer *obs.Tracer
	if traceFile != nil || store != nil || *explain >= -1 {
		opts := obs.Options{RingSize: 1 << 14, Spill: store}
		if traceFile != nil {
			opts.Sink = traceFile
		}
		tracer = obs.New(opts)
		cfg.Tracer = tracer
	}

	var rec *stagegraph.Recorder
	if *record != "" {
		rec = stagegraph.NewRecorder()
		cfg.Recorder = rec
	}

	rx := core.NewReceiver(cfg)
	decoded := rx.Decode(tr)
	if rec != nil {
		if err := rec.WriteFile(*record); err != nil {
			log.Fatalf("record: %v", err)
		}
	}
	sort.Slice(decoded, func(i, j int) bool { return decoded[i].Start < decoded[j].Start })

	fmt.Printf("- TnB decoded %d pkts -\n", len(decoded))
	fmt.Printf("%6s %6s %8s %14s %10s %6s %8s\n", "node", "seq", "SNR dB", "start sample", "CFO Hz", "pass", "airtime")
	for _, d := range decoded {
		node, seq := -1, -1
		if len(d.Payload) >= 4 {
			node = int(binary.BigEndian.Uint16(d.Payload[0:2]))
			seq = int(binary.BigEndian.Uint16(d.Payload[2:4]))
		}
		cfoHz := d.CFOCycles / params.SymbolDuration()
		fmt.Printf("%6d %6d %8.1f %14.1f %10.1f %6d %7.1fms\n",
			node, seq, d.SNRdB, d.Start, cfoHz, d.Pass, d.AirtimeSec*1e3)
	}

	if *explain >= -1 {
		explainPacket(tracer, *explain)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Fatalf("trace-store: %v", err)
		}
	}
}

// explainPacket renders the decode trace of the n-th detected packet in
// start order (final verdicts only), or lists all packets for n == -1.
func explainPacket(tracer *obs.Tracer, n int) {
	final := finalTraces(tracer)
	if len(final) == 0 {
		fmt.Println("\nno decode traces recorded")
		return
	}
	if n == -1 {
		fmt.Printf("\n- %d detected packets (use -explain <idx>) -\n", len(final))
		fmt.Printf("%4s %14s %6s %10s %s\n", "idx", "start sample", "pass", "verdict", "sync")
		for i, pt := range final {
			verdict := "decoded"
			if !pt.OK {
				verdict = string(pt.FailureReason)
			}
			fmt.Printf("%4d %14d %6d %10s %.2f\n", i, pt.Detection.StartSample, pt.Pass, verdict, pt.SyncScore)
		}
		return
	}
	if n >= len(final) {
		log.Fatalf("explain: packet %d out of range (0..%d)", n, len(final)-1)
	}
	fmt.Println()
	obs.Explain(os.Stdout, final[n])
}

// finalTraces returns each packet's final-verdict trace, start-ordered.
func finalTraces(tracer *obs.Tracer) []*obs.PacketTrace {
	var final []*obs.PacketTrace
	for _, pt := range tracer.Snapshot() {
		if pt.Final {
			final = append(final, pt)
		}
	}
	sort.SliceStable(final, func(i, j int) bool {
		return final[i].Detection.StartSample < final[j].Detection.StartSample
	})
	return final
}
