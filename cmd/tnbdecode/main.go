// tnbdecode decodes a LoRa IQ trace with TnB and prints the decoded packet
// list, mirroring the output of the paper artifact's TnBMain.m: the total
// count plus, per packet, the node ID, sequence number, estimated SNR,
// start time and CFO.
//
// Usage:
//
//	tnbdecode -sf 8 trace.iq
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"tnb/internal/core"
	"tnb/internal/lora"
	"tnb/internal/thrive"
	"tnb/internal/trace"
)

func main() {
	var (
		sf     = flag.Int("sf", 8, "spreading factor of the trace")
		osf    = flag.Int("osf", 8, "over-sampling factor")
		bw     = flag.Float64("bw", 125e3, "bandwidth in Hz")
		noBEC  = flag.Bool("nobec", false, "disable Block Error Correction")
		scheme = flag.String("scheme", "tnb", "tnb | thrive | sibling")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnbdecode [flags] <trace.iq>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	params := lora.MustParams(*sf, 4, *bw, *osf)
	tr, err := trace.ReadIQ16(f, params.SampleRate())
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{Params: params, UseBEC: !*noBEC}
	switch *scheme {
	case "tnb", "thrive":
	case "sibling":
		cfg.Policy = thrive.PolicySibling
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	if *scheme == "thrive" {
		cfg.UseBEC = false
	}

	rx := core.NewReceiver(cfg)
	decoded := rx.Decode(tr)
	sort.Slice(decoded, func(i, j int) bool { return decoded[i].Start < decoded[j].Start })

	fmt.Printf("- TnB decoded %d pkts -\n", len(decoded))
	fmt.Printf("%6s %6s %8s %14s %10s %6s\n", "node", "seq", "SNR dB", "start sample", "CFO Hz", "pass")
	for _, d := range decoded {
		node, seq := -1, -1
		if len(d.Payload) >= 4 {
			node = int(binary.BigEndian.Uint16(d.Payload[0:2]))
			seq = int(binary.BigEndian.Uint16(d.Payload[2:4]))
		}
		cfoHz := d.CFOCycles / params.SymbolDuration()
		fmt.Printf("%6d %6d %8.1f %14.1f %10.1f %6d\n",
			node, seq, d.SNRdB, d.Start, cfoHz, d.Pass)
	}
}
