// tnbgen generates a synthetic multi-node LoRa trace (int16 interleaved
// I/Q, the USRP dump layout) plus a ground-truth sidecar, substituting for
// the paper's testbed captures.
//
// Usage:
//
//	tnbgen -sf 8 -cr 4 -nodes 19 -load 10 -duration 5 -out trace.iq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tnb/internal/sim"
	"tnb/internal/trace"
)

func main() {
	var (
		sf       = flag.Int("sf", 8, "spreading factor (7-12)")
		cr       = flag.Int("cr", 4, "coding rate (1-4)")
		nodes    = flag.Int("nodes", 19, "number of nodes")
		load     = flag.Float64("load", 10, "aggregate load, packets/second")
		duration = flag.Float64("duration", 5, "trace duration, seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		dep      = flag.String("deployment", "indoor", "indoor | outdoor1 | outdoor2")
		etu      = flag.Bool("etu", false, "apply the LTE ETU fading channel")
		out      = flag.String("out", "trace.iq", "output IQ file")
		truthOut = flag.String("truth", "", "ground-truth text file (default <out>.truth)")
	)
	flag.Parse()

	var d sim.Deployment
	switch *dep {
	case "indoor":
		d = sim.Indoor
	case "outdoor1":
		d = sim.Outdoor1
	case "outdoor2":
		d = sim.Outdoor2
	default:
		log.Fatalf("unknown deployment %q", *dep)
	}
	d.Nodes = *nodes

	cfg := sim.Config{
		Deployment: d, SF: *sf, CR: *cr,
		LoadPktPerSec: *load, DurationSec: *duration,
		ETU: *etu, Seed: *seed,
	}
	gt, err := sim.Generate(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteIQ16(f, gt.Trace); err != nil {
		log.Fatal(err)
	}

	tpath := *truthOut
	if tpath == "" {
		tpath = *out + ".truth"
	}
	tf, err := os.Create(tpath)
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	fmt.Fprintf(tf, "# node seq start_sample snr_db cfo_hz num_samples\n")
	for _, r := range gt.Records {
		fmt.Fprintf(tf, "%d %d %.3f %.2f %.1f %d\n",
			r.Node, r.Seq, r.StartSample, r.SNRdB, r.CFOHz, r.NumSamples)
	}

	fmt.Printf("wrote %s: %d samples (%.1f s at %.0f Msps), %d packets from %d nodes\n",
		*out, gt.Trace.Len(), *duration, gt.Params.SampleRate()/1e6, len(gt.Records), *nodes)
	fmt.Printf("ground truth in %s\n", tpath)
}
