// tnbreplay inspects and replays stage recordings produced by
// `tnbdecode -record` (or any pipeline with a stagegraph.Recorder attached).
//
// Without -stage it prints the recording summary: parameters, windows,
// passes, the boundaries each pass captured, and the decode outcomes at the
// bec boundary. With -stage it re-runs that one stage — the real
// implementation, fed the boundary inputs reconstructed from the recording —
// and diffs its output against the recorded boundary. A clean stage yields
// an empty diff; after an end-to-end golden break, replaying each stage in
// order bisects which one diverged.
//
// Usage:
//
//	tnbreplay rec.tnbsgr                        # summary
//	tnbreplay -stage thrive rec.tnbsgr          # replay one stage, diff
//	tnbreplay -stage all rec.tnbsgr             # replay every boundary
//	tnbreplay -stage bec -pass 2 -workers 4 rec.tnbsgr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tnb/internal/stagegraph"
)

func main() {
	var (
		stage   = flag.String("stage", "", "stage to replay: detect | sigcalc | thrive | bec | all (empty = print summary)")
		window  = flag.Int("window", 0, "window index to replay")
		pass    = flag.Int("pass", 1, "decoding pass to replay (1 or 2)")
		workers = flag.Int("workers", 0, "pipeline width for the replayed stage (0 = all cores); boundaries are identical for every value")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnbreplay [flags] <recording>")
		os.Exit(2)
	}
	rec, err := stagegraph.LoadRecording(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	switch *stage {
	case "":
		summarize(rec)
	case "all":
		diffs, err := rec.ReplayChain(*workers)
		if err != nil {
			log.Fatal(err)
		}
		bad := 0
		for _, d := range diffs {
			fmt.Println(d)
			if !d.Match {
				bad++
			}
		}
		if bad > 0 {
			fmt.Printf("%d/%d boundaries diverged\n", bad, len(diffs))
			os.Exit(1)
		}
		fmt.Printf("all %d boundaries match\n", len(diffs))
	default:
		d, err := rec.Replay(stagegraph.ReplayOptions{
			Window: *window, Pass: *pass, Stage: *stage, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(d)
		if !d.Match {
			os.Exit(1)
		}
	}
}

// summarize prints the recording's header, windows, passes and outcomes.
func summarize(rec *stagegraph.Recording) {
	h := rec.Header
	fmt.Printf("recording v%d: SF%d CR%d BW %.0f OSF %d", h.Version, h.SF, h.CR, h.Bandwidth, h.OSF)
	if h.UseBEC {
		fmt.Printf(" BEC(W=%d)", h.W)
	}
	fmt.Printf(" seed %d\n", h.Seed)
	for wi, rw := range rec.Windows {
		fmt.Printf("window %d: %d antennas x %d samples, %d pass(es)\n",
			wi, len(rw.Antennas), len(rw.Antennas[0]), len(rw.Passes))
		for _, rp := range rw.Passes {
			fmt.Printf("  pass %d: boundaries %v\n", rp.Pass, rp.Stages())
			if dets, err := rp.Detections(); err == nil {
				for i, pk := range dets {
					fmt.Printf("    det %d: start %.2f cfo %.4f quality %.3g\n", i, pk.Start, pk.CFOCycles, pk.Quality)
				}
			}
			outs, err := rp.Outcomes()
			if err != nil {
				continue
			}
			for _, o := range outs {
				verdict := "failed"
				if o.OK {
					verdict = fmt.Sprintf("decoded %d bytes (SNR %.1f dB, rescued %d)",
						len(o.Dec.Payload), o.Dec.SNRdB, o.Dec.Rescued)
				}
				fmt.Printf("    pkt %d: %s\n", o.DetIdx, verdict)
			}
		}
	}
}
