// becprob regenerates Fig. 20: the decoding error probability of BEC for
// CR 4 with three error columns, comparing the closed-form analysis
// (Lemma 4, under the independence assumption) against Monte Carlo
// simulation for SF 7–12.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"tnb/internal/bec"
	"tnb/internal/lora"
)

func main() {
	trials := flag.Int("trials", 20000, "Monte Carlo trials per SF")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Println("CR 4, 3 error columns: decoding error probability")
	fmt.Printf("%4s %12s %12s\n", "SF", "analysis", "simulation")
	for sf := 7; sf <= 12; sf++ {
		analysis := bec.ErrorProbCR4ThreeColumns(sf)
		simulated := monteCarlo(sf, *trials, *seed)
		fmt.Printf("%4d %12.5f %12.5f\n", sf, analysis, simulated)
	}
}

// monteCarlo measures the failure rate of BEC on random 3-column error
// patterns under the independence assumption (each bit of an error column
// flips with probability 1/2).
func monteCarlo(sf, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed + int64(sf)))
	failures := 0
	for t := 0; t < trials; t++ {
		truth := lora.NewBlock(sf, 8)
		for r := 0; r < sf; r++ {
			truth.SetRowCodeword(r, lora.HammingEncode(uint8(rng.Intn(16)), 4))
		}
		cols := rng.Perm(8)[:3]
		received := truth.Clone()
		for _, c := range cols {
			for r := 0; r < sf; r++ {
				if rng.Intn(2) == 1 {
					received.Bits[r][c] ^= 1
				}
			}
		}
		res := bec.DecodeBlock(received, 4)
		found := false
		for _, cand := range res.Candidates {
			if cand.Equal(truth) {
				found = true
				break
			}
		}
		if !found {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}
