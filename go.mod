module tnb

go 1.22
