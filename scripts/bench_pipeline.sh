#!/usr/bin/env bash
# bench_pipeline.sh — measure the receiver pipeline across worker-pool widths
# plus the dechirp/sigcalc kernel micro-benchmarks, and write
# BENCH_pipeline.json (ns/op, allocs/op, bytes/op, samples/sec and
# samples/sec-per-core per variant, with the host's CPU count recorded per
# variant so numbers from different hosts stay comparable) for tracking the
# parallel-decode, allocation and kernel-fusion work.
#
# Usage: scripts/bench_pipeline.sh [benchtime] [output]
#   benchtime  go test -benchtime value for the receiver bench (default 5x;
#              kernel micro-benches always use time-based 200ms runs)
#   output     JSON path (default BENCH_pipeline.json in the repo root)
#
#        scripts/bench_pipeline.sh check [benchtime] [baseline]
#   Runs the same benchmarks into a temporary file, prints a benchstat-style
#   delta table against the committed baseline (default BENCH_pipeline.json),
#   and exits non-zero when the receiver `bare` variant, any kernel row
#   (ScanPreambles, dechirp, FFT) or any fleet ingest row (netserver
#   workers=1/2/4) regresses by more than 10% in ns/op.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "check" ]]; then
    benchtime="${2:-5x}"
    base="${3:-BENCH_pipeline.json}"
    [[ -f "$base" ]] || { echo "baseline $base not found" >&2; exit 2; }
    tmp=$(mktemp /tmp/bench_pipeline.XXXXXX.json)
    trap 'rm -f "$tmp"' EXIT
    bash scripts/bench_pipeline.sh "$benchtime" "$tmp"
    echo "" >&2
    # Benchstat-style comparison: section-qualified rows, ns/op old vs new.
    # Gated rows (the receiver bare variant, every kernel row and every
    # fleet ingest row) fail the check beyond +10%; the rest are
    # informational.
    awk -v gate=10 '
    FNR == 1 { fileno++ }
    /^  "variants": \{/   { section = "variants"; next }
    /^  "kernels": \{/    { section = "kernels"; next }
    /^  "fleet": \{/      { section = "fleet"; next }
    /^  "tracestore": \{/ { section = "tracestore"; next }
    /^  \},?$/            { section = "" }
    section != "" && /^    "/ {
        name = $0; sub(/^ *"/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        key = section "/" name
        if (fileno == 1) { old[key] = ns }
        else if (!(key in new)) { new[key] = ns; order[n++] = key }
    }
    END {
        printf "%-40s %15s %15s %9s\n", "name", "old ns/op", "new ns/op", "delta"
        fail = 0
        for (i = 0; i < n; i++) {
            key = order[i]
            if (!(key in old)) {
                printf "%-40s %15s %15s %9s\n", key, "-", new[key], "new"
                continue
            }
            delta = (new[key] - old[key]) / old[key] * 100
            gated = (key == "variants/bare" || key ~ /^kernels\// || key ~ /^fleet\//)
            mark = ""
            if (gated && delta > gate) { mark = "  REGRESSION"; fail = 1 }
            printf "%-40s %15s %15s %+8.2f%%%s\n", key, old[key], new[key], delta, mark
        }
        exit fail
    }' "$base" "$tmp"
    exit $?
fi

benchtime="${1:-5x}"
out="${2:-BENCH_pipeline.json}"

raw=$(go test -bench 'BenchmarkReceiver/' -benchtime "$benchtime" -count 3 -run '^$' . )
echo "$raw" >&2

# Kernel micro-benchmarks: the fused dechirp (vs the legacy 3-pass path), one
# Q evaluation of the fractional sync search, and the preamble scan across
# pool widths. Time-based benchtime keeps these stable regardless of the
# iteration count passed for the (much slower) receiver bench; -count with
# per-row minimum (taken in the awk below) is the honest estimator on a
# steal-prone shared host, where single runs swing far more than the
# differences being tracked. ScanPreambles gets the deepest repeat count:
# its iterations are ms-scale (few per 200ms window), so its single-run
# variance is the largest of the gated rows.
kraw=$(go test -bench 'BenchmarkDechirp$' -benchtime 200ms -count 5 -run '^$' ./internal/lora
       go test -bench 'BenchmarkEvalQ$|BenchmarkScanPreambles$' -benchtime 200ms -count 15 -run '^$' ./internal/detect
       go test -bench 'BenchmarkDechirpKernel$|BenchmarkForwardMag256$|BenchmarkForwardMagBatch$' -benchtime 200ms -count 5 -run '^$' ./internal/dsp)
echo "$kraw" >&2

# Network-server ingest across verification widths: the mixed join/dedup/
# data batch, reporting packets/sec and the dedup-table high-water bytes.
# Min across -count repeats (in the awk below), same estimator as the
# kernel rows: these are gated and µs-scale, so single-run steal-time
# swings would dwarf the regressions being tracked. 12 repeats because
# the three worker widths run the same inline path at this batch size
# and their mins must converge close enough to compare.
fraw=$(go test -bench 'BenchmarkNetserverIngest/' -benchtime 200ms -count 12 -run '^$' ./internal/netserver)
echo "$fraw" >&2

# Trace store: the durable append path (enqueue + batched write/fsync,
# records/s) and an indexed query against a sealed 100k-record store.
traw=$(go test -bench 'BenchmarkStoreAppend$|BenchmarkStoreQuery$' -benchtime 200ms -run '^$' ./internal/tracestore)
echo "$traw" >&2

{ echo "$raw"; echo "===KERNELS==="; echo "$kraw"; echo "===FLEET==="; echo "$fraw"; echo "===TRACESTORE==="; echo "$traw"; } | awk -v ncpu="$(nproc)" -v benchtime="$benchtime" '
/^===KERNELS===$/ { kernels = 1; next }
/^===FLEET===$/ { kernels = 0; fleet = 1; next }
/^===TRACESTORE===$/ { fleet = 0; tstore = 1; next }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    sub(/#[0-9]+$/, "", name)          # collapse go test dup suffixes (workers=1#01)
    ns = ""; allocs = ""; bytes = ""; sps = ""; pps = ""; dbytes = ""; rps = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "samples/sec") sps = $(i-1)
        if ($(i) == "packets/s") pps = $(i-1)
        if ($(i) == "dedup-bytes") dbytes = $(i-1)
        if ($(i) == "records/s") rps = $(i-1)
    }
    if (ns == "") next
    if (tstore) {
        sub(/^Benchmark/, "", name)
        if (tseen[name]++) next
        torder[tn++] = name
        TNS[name] = ns; TRS[name] = rps
    } else if (!kernels && !fleet && name ~ /^BenchmarkReceiver\//) {
        sub(/^BenchmarkReceiver\//, "", name)
        # Keep the lowest-ns run of a repeated name (-count repeats and the
        # occasional #NN duplicate alike): the least steal-time-contaminated
        # observation, with its own allocs/bytes/samples so the row stays
        # internally consistent.
        if (!(name in NS)) order[n++] = name
        else if (ns + 0 >= NS[name] + 0) next
        NS[name] = ns; AL[name] = allocs; BY[name] = bytes; SPS[name] = sps
    } else if (kernels) {
        sub(/^Benchmark/, "", name)
        # Minimum across the -count repeats: the lowest observation is the
        # least steal-time-contaminated one.
        if (!(name in KNS)) { korder[kn++] = name; KNS[name] = ns }
        else if (ns + 0 < KNS[name] + 0) KNS[name] = ns
    } else if (fleet && name ~ /^BenchmarkNetserverIngest\//) {
        sub(/^BenchmarkNetserverIngest\//, "", name)
        # Lowest-ns repeat, carrying its own packets/s and dedup bytes so
        # the row stays internally consistent.
        if (!(name in FNS)) forder[fn++] = name
        else if (ns + 0 >= FNS[name] + 0) next
        FNS[name] = ns; FPPS[name] = pps; FDB[name] = dbytes
    }
}
END {
    printf "{\n"
    printf "  \"bench\": \"BenchmarkReceiver\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", ncpu
    # Pre-parallel-pipeline reference (commit 11d64f1, bare variant, 1-CPU
    # host): what the allocation overhaul and worker pool are measured
    # against. allocs_per_op dropped 45% and bytes_per_op 92% on the same
    # host; wall-clock scaling additionally needs host_cpus > 1.
    printf "  \"pre_pr_baseline\": {\"commit\": \"11d64f1\", \"ns_per_op\": 181000000, \"allocs_per_op\": 44098, \"bytes_per_op\": 82000000},\n"
    # Pre-kernel-fusion reference (commit 91d79bc, bare variant): what the
    # fused dechirp / ForwardMag / rotator work is measured against. The
    # acceptance bar for the kernel PR is >= 25% ns_per_op improvement.
    printf "  \"pre_kernel_baseline\": {\"commit\": \"91d79bc\", \"ns_per_op\": 152130196, \"allocs_per_op\": 24103, \"bytes_per_op\": 6922685},\n"
    # Pre-scan-batching reference (commit 7d35456, bare variant): what the
    # incremental scan, batched FFTs and pooled decode loop are measured
    # against (ScanPreambles/workers=1 was 7574909 ns).
    printf "  \"pre_batch_baseline\": {\"commit\": \"7d35456\", \"ns_per_op\": 139213417, \"allocs_per_op\": 19293, \"bytes_per_op\": 6738976, \"scan_ns_per_op\": 7574909},\n"
    # Pre-sharding reference (commit 26c5f40, fleet/workers=1): what the
    # sharded, allocation-free netserver ingest engine is measured against.
    # The acceptance bar for the sharding PR is >= 2x packets_per_sec at
    # workers=1 and non-regressing workers=2/4.
    printf "  \"pre_shard_baseline\": {\"commit\": \"26c5f40\", \"workers1_ns_per_op\": 27170, \"workers1_packets_per_sec\": 515276, \"workers2_packets_per_sec\": 453989, \"workers4_packets_per_sec\": 473676},\n"
    printf "  \"variants\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"samples_per_sec\": %s, \"host_cpus\": %d, \"samples_per_sec_per_core\": %.0f}%s\n", \
            name, NS[name], AL[name], BY[name], SPS[name], ncpu, SPS[name] / ncpu, (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"kernels\": {\n"
    for (i = 0; i < kn; i++) {
        name = korder[i]
        printf "    \"%s\": {\"ns_per_op\": %s}%s\n", name, KNS[name], (i < kn-1 ? "," : "")
    }
    printf "  },\n"
    # Netserver ingest (BenchmarkNetserverIngest): the network-server layer
    # over the mixed join/dedup/data batch, per verification width.
    printf "  \"fleet\": {\n"
    for (i = 0; i < fn; i++) {
        name = forder[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"packets_per_sec\": %s, \"packets_per_sec_per_core\": %.0f, \"dedup_table_bytes\": %s}%s\n", \
            name, FNS[name], FPPS[name], FPPS[name] / ncpu, FDB[name], (i < fn-1 ? "," : "")
    }
    printf "  },\n"
    # Trace store (BenchmarkStoreAppend / BenchmarkStoreQuery): durable
    # append throughput and a filtered indexed query over 100k records.
    printf "  \"tracestore\": {\n"
    for (i = 0; i < tn; i++) {
        name = torder[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, TNS[name]
        if (TRS[name] != "") printf ", \"records_per_sec\": %s", TRS[name]
        printf "}%s\n", (i < tn-1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' > "$out"

echo "wrote $out" >&2
