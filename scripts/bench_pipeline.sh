#!/usr/bin/env bash
# bench_pipeline.sh — measure the receiver pipeline across worker-pool widths
# plus the dechirp/sigcalc kernel micro-benchmarks, and write
# BENCH_pipeline.json (ns/op, allocs/op, bytes/op, samples/sec per variant)
# for tracking the parallel-decode, allocation and kernel-fusion work.
#
# Usage: scripts/bench_pipeline.sh [benchtime] [output]
#   benchtime  go test -benchtime value for the receiver bench (default 5x;
#              kernel micro-benches always use time-based 200ms runs)
#   output     JSON path (default BENCH_pipeline.json in the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-5x}"
out="${2:-BENCH_pipeline.json}"

raw=$(go test -bench 'BenchmarkReceiver/' -benchtime "$benchtime" -run '^$' . )
echo "$raw" >&2

# Kernel micro-benchmarks: the fused dechirp (vs the legacy 3-pass path), one
# Q evaluation of the fractional sync search, and the preamble scan across
# pool widths. Time-based benchtime keeps these stable regardless of the
# iteration count passed for the (much slower) receiver bench.
kraw=$(go test -bench 'BenchmarkDechirp$' -benchtime 200ms -run '^$' ./internal/lora
       go test -bench 'BenchmarkEvalQ$|BenchmarkScanPreambles$' -benchtime 200ms -run '^$' ./internal/detect
       go test -bench 'BenchmarkDechirpKernel$|BenchmarkForwardMag256$' -benchtime 200ms -run '^$' ./internal/dsp)
echo "$kraw" >&2

# Network-server ingest across verification widths: the mixed join/dedup/
# data batch, reporting packets/sec and the dedup-table high-water bytes.
fraw=$(go test -bench 'BenchmarkNetserverIngest/' -benchtime 200ms -run '^$' ./internal/netserver)
echo "$fraw" >&2

# Trace store: the durable append path (enqueue + batched write/fsync,
# records/s) and an indexed query against a sealed 100k-record store.
traw=$(go test -bench 'BenchmarkStoreAppend$|BenchmarkStoreQuery$' -benchtime 200ms -run '^$' ./internal/tracestore)
echo "$traw" >&2

{ echo "$raw"; echo "===KERNELS==="; echo "$kraw"; echo "===FLEET==="; echo "$fraw"; echo "===TRACESTORE==="; echo "$traw"; } | awk -v ncpu="$(nproc)" -v benchtime="$benchtime" '
/^===KERNELS===$/ { kernels = 1; next }
/^===FLEET===$/ { kernels = 0; fleet = 1; next }
/^===TRACESTORE===$/ { fleet = 0; tstore = 1; next }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""; bytes = ""; sps = ""; pps = ""; dbytes = ""; rps = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "samples/sec") sps = $(i-1)
        if ($(i) == "packets/s") pps = $(i-1)
        if ($(i) == "dedup-bytes") dbytes = $(i-1)
        if ($(i) == "records/s") rps = $(i-1)
    }
    if (ns == "") next
    if (tstore) {
        sub(/^Benchmark/, "", name)
        if (tseen[name]++) next
        torder[tn++] = name
        TNS[name] = ns; TRS[name] = rps
    } else if (!kernels && !fleet && name ~ /^BenchmarkReceiver\//) {
        sub(/^BenchmarkReceiver\//, "", name)
        if (seen[name]++) next         # keep the first run of a repeated name
        order[n++] = name
        NS[name] = ns; AL[name] = allocs; BY[name] = bytes; SPS[name] = sps
    } else if (kernels) {
        sub(/^Benchmark/, "", name)
        if (kseen[name]++) next
        korder[kn++] = name
        KNS[name] = ns
    } else if (fleet && name ~ /^BenchmarkNetserverIngest\//) {
        sub(/^BenchmarkNetserverIngest\//, "", name)
        if (fseen[name]++) next
        forder[fn++] = name
        FPPS[name] = pps; FDB[name] = dbytes; FNS[name] = ns
    }
}
END {
    printf "{\n"
    printf "  \"bench\": \"BenchmarkReceiver\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", ncpu
    # Pre-parallel-pipeline reference (commit 11d64f1, bare variant, 1-CPU
    # host): what the allocation overhaul and worker pool are measured
    # against. allocs_per_op dropped 45% and bytes_per_op 92% on the same
    # host; wall-clock scaling additionally needs host_cpus > 1.
    printf "  \"pre_pr_baseline\": {\"commit\": \"11d64f1\", \"ns_per_op\": 181000000, \"allocs_per_op\": 44098, \"bytes_per_op\": 82000000},\n"
    # Pre-kernel-fusion reference (commit 91d79bc, bare variant): what the
    # fused dechirp / ForwardMag / rotator work is measured against. The
    # acceptance bar for the kernel PR is >= 25% ns_per_op improvement.
    printf "  \"pre_kernel_baseline\": {\"commit\": \"91d79bc\", \"ns_per_op\": 152130196, \"allocs_per_op\": 24103, \"bytes_per_op\": 6922685},\n"
    printf "  \"variants\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"samples_per_sec\": %s}%s\n", \
            name, NS[name], AL[name], BY[name], SPS[name], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"kernels\": {\n"
    for (i = 0; i < kn; i++) {
        name = korder[i]
        printf "    \"%s\": {\"ns_per_op\": %s}%s\n", name, KNS[name], (i < kn-1 ? "," : "")
    }
    printf "  },\n"
    # Netserver ingest (BenchmarkNetserverIngest): the network-server layer
    # over the mixed join/dedup/data batch, per verification width.
    printf "  \"fleet\": {\n"
    for (i = 0; i < fn; i++) {
        name = forder[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"packets_per_sec\": %s, \"dedup_table_bytes\": %s}%s\n", \
            name, FNS[name], FPPS[name], FDB[name], (i < fn-1 ? "," : "")
    }
    printf "  },\n"
    # Trace store (BenchmarkStoreAppend / BenchmarkStoreQuery): durable
    # append throughput and a filtered indexed query over 100k records.
    printf "  \"tracestore\": {\n"
    for (i = 0; i < tn; i++) {
        name = torder[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, TNS[name]
        if (TRS[name] != "") printf ", \"records_per_sec\": %s", TRS[name]
        printf "}%s\n", (i < tn-1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' > "$out"

echo "wrote $out" >&2
