#!/usr/bin/env bash
# bench_pipeline.sh — measure the receiver pipeline across worker-pool widths
# and write BENCH_pipeline.json (ns/op, allocs/op, bytes/op, samples/sec per
# variant) for tracking the parallel-decode and allocation work.
#
# Usage: scripts/bench_pipeline.sh [benchtime] [output]
#   benchtime  go test -benchtime value (default 5x)
#   output     JSON path (default BENCH_pipeline.json in the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-5x}"
out="${2:-BENCH_pipeline.json}"

raw=$(go test -bench 'BenchmarkReceiver/' -benchtime "$benchtime" -run '^$' . )
echo "$raw" >&2

echo "$raw" | awk -v ncpu="$(nproc)" -v benchtime="$benchtime" '
/^BenchmarkReceiver\// {
    name = $1
    sub(/^BenchmarkReceiver\//, "", name)
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""; bytes = ""; sps = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "samples/sec") sps = $(i-1)
    }
    if (ns == "") next
    if (seen[name]++) next             # keep the first run of a repeated name
    order[n++] = name
    NS[name] = ns; AL[name] = allocs; BY[name] = bytes; SPS[name] = sps
}
END {
    printf "{\n"
    printf "  \"bench\": \"BenchmarkReceiver\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"host_cpus\": %d,\n", ncpu
    # Pre-parallel-pipeline reference (commit 11d64f1, bare variant, 1-CPU
    # host): what the allocation overhaul and worker pool are measured
    # against. allocs_per_op dropped 45% and bytes_per_op 92% on the same
    # host; wall-clock scaling additionally needs host_cpus > 1.
    printf "  \"pre_pr_baseline\": {\"commit\": \"11d64f1\", \"ns_per_op\": 181000000, \"allocs_per_op\": 44098, \"bytes_per_op\": 82000000},\n"
    printf "  \"variants\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s, \"samples_per_sec\": %s}%s\n", \
            name, NS[name], AL[name], BY[name], SPS[name], (i < n-1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' > "$out"

echo "wrote $out" >&2
