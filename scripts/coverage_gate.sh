#!/usr/bin/env bash
# coverage_gate.sh — per-package coverage floor.
#
# Runs `go test -short -cover` over the module and compares each package's
# statement coverage against the committed baseline
# (scripts/coverage_baseline.txt). A package may drop at most SLACK points
# below its floor before the gate fails; packages new since the baseline
# pass with a notice. When GITHUB_STEP_SUMMARY is set the per-package table
# is published as the job summary.
#
# Usage:
#   scripts/coverage_gate.sh           # check against the baseline
#   scripts/coverage_gate.sh update    # rewrite the baseline from this run
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/coverage_baseline.txt
SLACK=2.0
MODE="${1:-check}"

# One line per tested package: "<import path> <coverage pct>".
CURRENT=$(go test -short -count=1 -cover ./... \
  | awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:") { pct = $(i+1); sub(/%/, "", pct); print $2, pct } }' \
  | sort)

if [ -z "$CURRENT" ]; then
  echo "coverage_gate: no coverage output (did the test run fail?)" >&2
  exit 1
fi

if [ "$MODE" = "update" ]; then
  printf '%s\n' "$CURRENT" > "$BASELINE"
  echo "coverage_gate: wrote $(printf '%s\n' "$CURRENT" | wc -l) package floors to $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "coverage_gate: $BASELINE missing; run 'scripts/coverage_gate.sh update'" >&2
  exit 1
fi

TABLE="| package | floor | current | verdict |
|---|---:|---:|---|"
FAIL=0

# Gate every baselined package.
while read -r pkg floor; do
  cur=$(printf '%s\n' "$CURRENT" | awk -v p="$pkg" '$1 == p { print $2 }')
  if [ -z "$cur" ]; then
    TABLE="$TABLE
| $pkg | ${floor}% | (gone) | FAIL: package lost its tests |"
    FAIL=1
    continue
  fi
  verdict=$(awk -v c="$cur" -v f="$floor" -v s="$SLACK" \
    'BEGIN { if (c + s < f) print "FAIL: regressed >" s " pts"; else if (c < f) print "ok (within slack)"; else print "ok" }')
  case "$verdict" in FAIL*) FAIL=1 ;; esac
  TABLE="$TABLE
| $pkg | ${floor}% | ${cur}% | $verdict |"
done < "$BASELINE"

# Note packages that appeared since the baseline.
while read -r pkg cur; do
  if ! awk -v p="$pkg" '$1 == p { found = 1 } END { exit !found }' "$BASELINE"; then
    TABLE="$TABLE
| $pkg | (new) | ${cur}% | ok — add to baseline |"
  fi
done <<< "$CURRENT"

printf '%s\n' "$TABLE"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "## Coverage gate"
    echo
    printf '%s\n' "$TABLE"
  } >> "$GITHUB_STEP_SUMMARY"
fi

if [ "$FAIL" -ne 0 ]; then
  echo "coverage_gate: FAIL — coverage regressed more than ${SLACK} points below the floor" >&2
  echo "coverage_gate: if intentional, refresh with 'scripts/coverage_gate.sh update'" >&2
  exit 1
fi
echo "coverage_gate: ok"
