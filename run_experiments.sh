#!/bin/bash
# Regenerates the paper's figures at laptop scale for EXPERIMENTS.md.
set -x
cd /root/repo
D=4     # seconds per run (paper: 30)
go run ./cmd/becprob -trials 40000                      > results/fig20.txt 2>&1
go run ./cmd/tnbsim -fig 10 -sf 8  -duration $D         > results/fig10_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 11       -duration $D          > results/fig11.txt 2>&1
go run ./cmd/tnbsim -fig 12 -sf 8  -duration $D         > results/fig12_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 13 -sf 8  -duration $D         > results/fig13_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 14 -sf 8  -duration $D         > results/fig14_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 15 -sf 8  -duration $D         > results/fig15_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 16 -sf 8 -cr 3 -duration $D    > results/fig16_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 17 -sf 8  -duration $D         > results/fig17_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 18       -duration $D          > results/fig18.txt 2>&1
go run ./cmd/tnbsim -fig 19 -sf 8  -duration $D         > results/fig19_sf8.txt 2>&1
go run ./cmd/tnbsim -fig 12 -sf 10 -duration $D         > results/fig12_sf10.txt 2>&1
go run ./cmd/tnbsim -fig 15 -sf 10 -duration $D         > results/fig15_sf10.txt 2>&1
go run ./cmd/tnbsim -fig 19 -sf 10 -duration $D         > results/fig19_sf10.txt 2>&1
go run ./cmd/tnbsim -fig 10 -sf 10 -duration $D         > results/fig10_sf10.txt 2>&1
echo DONE > results/STATUS
